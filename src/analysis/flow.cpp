#include "analysis/flow.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string_view>
#include <tuple>

#include "analysis/absint.hpp"
#include "analysis/callgraph.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/summary.hpp"

namespace nisc::analysis {
namespace {

using iss::Op;

bool is_load(Op op) {
  return op == Op::Lb || op == Op::Lh || op == Op::Lw || op == Op::Lbu || op == Op::Lhu;
}
bool is_store(Op op) { return op == Op::Sb || op == Op::Sh || op == Op::Sw; }

std::uint32_t access_size(Op op) {
  switch (op) {
    case Op::Lb: case Op::Lbu: case Op::Sb: return 1;
    case Op::Lh: case Op::Lhu: case Op::Sh: return 2;
    default: return 4;
  }
}

bool is_ret(const iss::Instr& in) {
  return in.op == Op::Jalr && in.rd == 0 && in.rs1 == 1 && in.imm == 0;
}

bool is_call(const iss::Instr& in) {
  return (in.op == Op::Jal || in.op == Op::Jalr) && in.rd != 0;
}

const char* reg_name(std::uint8_t r) {
  static const char* names[32] = {"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
                                  "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
                                  "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
                                  "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  return names[r & 31];
}

constexpr std::uint8_t kCalleeSaved[] = {8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27};

/// "f", or "f/g" for a resolved multi-target (jalr) site.
std::string callee_names(const CallGraph& cg, const CallSite& site) {
  std::string out;
  for (std::size_t i = 0; i < site.callees.size(); ++i) {
    if (i) out += '/';
    out += cg.functions()[site.callees[i]].name;
  }
  return out;
}

/// Both passes can derive the same defect; findings are buffered and keyed
/// by (rule, pc, operand) so the duplicate becomes a "via call from" note on
/// one diagnostic instead of a second entry. Flush order is insertion
/// order: all intraprocedural findings first, then interprocedural-only
/// ones.
class FindingBuffer {
 public:
  using Key = std::tuple<std::string, std::uint32_t, std::uint32_t>;

  void add(Severity severity, std::string rule, std::uint32_t pc, std::uint32_t aux,
           std::string message, int line) {
    Key key{rule, pc, aux};
    if (index_.count(key) > 0) return;
    index_.emplace(std::move(key), findings_.size());
    findings_.push_back(Finding{severity, std::move(rule), std::move(message), line, false});
  }

  /// Interprocedural entry point: merge into an existing finding as a note,
  /// or record a new finding carrying its call-site provenance.
  void add_interproc(Severity severity, std::string rule, std::uint32_t pc, std::uint32_t aux,
                     std::string message, int line, int via_line) {
    Key key{rule, pc, aux};
    auto it = index_.find(key);
    if (it != index_.end()) {
      Finding& f = findings_[it->second];
      if (via_line > 0 && f.message.find("via call from") == std::string::npos) {
        f.message += " (also reachable via call from line ";
        f.message += std::to_string(via_line);
        f.message += ")";
      }
      return;
    }
    if (via_line > 0) {
      message += " (via call from line ";
      message += std::to_string(via_line);
      message += ")";
    }
    index_.emplace(std::move(key), findings_.size());
    findings_.push_back(Finding{severity, std::move(rule), std::move(message), line, false});
  }

  bool has(std::string_view rule, std::uint32_t pc, std::uint32_t aux) const {
    return index_.count(Key{std::string(rule), pc, aux}) > 0;
  }

  void remove(std::string_view rule, std::uint32_t pc, std::uint32_t aux) {
    auto it = index_.find(Key{std::string(rule), pc, aux});
    if (it != index_.end()) findings_[it->second].removed = true;
  }

  void flush(const FlowReport& report) {
    for (Finding& f : findings_) {
      if (!f.removed) report(f.severity, std::move(f.rule), std::move(f.message), f.line);
    }
  }

 private:
  struct Finding {
    Severity severity;
    std::string rule;
    std::string message;
    int line;
    bool removed;
  };
  std::vector<Finding> findings_;
  std::map<Key, std::size_t> index_;
};

/// State at `addr` inside its block: the block in-state transferred through
/// every preceding instruction. Returns false when the block is unreachable.
template <class Domain>
bool state_before(const Cfg& cfg, const DataflowResult<Domain>& flow, const Domain& domain,
                  std::uint32_t addr, RegState& out) {
  std::size_t b = cfg.block_at(addr);
  if (b == Cfg::npos || !flow.in[b]) return false;
  out = *flow.in[b];
  for (const CfgInstr& ci : cfg.blocks()[b].instrs) {
    if (ci.addr == addr) return true;
    domain.transfer(ci, out);
  }
  return false;
}

// Messages in this pass are built with += : chained operator+ trips a
// spurious GCC 12 -Wrestrict at -O2.
std::string uninit_read_message(const CfgInstr& ci, std::uint8_t r) {
  std::string message = "'";
  message += iss::disassemble(ci.instr);
  message += "' reads register ";
  message += reg_name(r);
  message += " which is never written on any path from the entry";
  return message;
}

std::string oob_message(const CfgInstr& ci, const Interval& range, std::uint64_t mem_size) {
  std::string message = "'";
  message += iss::disassemble(ci.instr);
  message += "' accesses address ";
  if (range.is_exact()) {
    message += std::to_string(range.lo);
  } else {
    message += "[";
    message += std::to_string(range.lo);
    message += ", ";
    message += std::to_string(range.hi);
    message += "]";
  }
  message += " which is outside the ";
  message += std::to_string(mem_size);
  message += "-byte memory map on every path";
  return message;
}

/// NL301: every pragma breakpoint must be reachable from the entry.
void check_reachability(const Cfg& cfg, const iss::Program& program,
                        const std::vector<cosim::PragmaBinding>& bindings,
                        const std::vector<bool>& reachable, FindingBuffer& buffer) {
  for (const cosim::PragmaBinding& b : bindings) {
    if (!program.has_symbol(b.label)) continue;  // lint.asm already fired
    std::uint32_t label_addr = program.symbols.at(b.label);
    std::size_t block = cfg.block_at(label_addr);
    if (block == Cfg::npos) continue;  // label points into data, not code
    if (!reachable[block]) {
      buffer.add(Severity::Warning, "NL301", label_addr, 0,
                 "breakpoint for port '" + b.port + "' on line " +
                     std::to_string(b.breakpoint_line) +
                     " is unreachable from the program entry; the ISS can never stop there",
                 b.breakpoint_line);
    }
  }
}

/// NL302 + NL303: replay each reachable block from its fixpoint in-state,
/// flagging definite uninitialized reads and definite out-of-map accesses.
/// Shared by the whole-program pass and the per-function context pass —
/// identical keys make the two dedupe into one diagnostic.
template <class Domain>
void check_block_values(const Cfg& cfg, const std::vector<std::size_t>& blocks,
                        const DataflowResult<Domain>& flow, const Domain& domain,
                        const FlowOptions& options, int via_line, FindingBuffer& buffer) {
  for (std::size_t b : blocks) {
    if (!flow.in[b] || flow.in[b]->dead) continue;
    RegState state = *flow.in[b];
    for (const CfgInstr& ci : cfg.blocks()[b].instrs) {
      if (state.dead) break;
      for (std::uint8_t r : RegDomain::regs_read_values(ci.instr)) {
        if (r == 0) continue;
        if (state.regs[r].init == AbsValue::Init::Uninit) {
          buffer.add_interproc(Severity::Warning, "NL302", ci.addr, r, uninit_read_message(ci, r),
                               ci.line, via_line);
        }
      }
      if (is_load(ci.instr.op) || is_store(ci.instr.op)) {
        AbsValue addr = RegDomain::effective_address(state, ci.instr);
        // Only base-less bounded intervals can prove an access out of map;
        // sp-relative and unbounded addresses stay silent.
        if (addr.base == AbsValue::Base::None && !addr.range.is_top()) {
          std::int64_t limit =
              static_cast<std::int64_t>(options.mem_size) - access_size(ci.instr.op);
          if (addr.range.lo > limit || addr.range.hi < 0) {
            buffer.add_interproc(Severity::Error, "NL303", ci.addr, 0,
                                 oob_message(ci, addr.range, options.mem_size), ci.line, via_line);
          }
        }
      }
      domain.transfer(ci, state);
    }
  }
}

/// NL304: per-function stack balance. Each function (the entry plus every
/// call target) is analyzed over intraprocedural edges with callees
/// summarized as balanced; at every reachable `ret` the stack pointer must
/// be provably back at its entry value.
void check_stack_balance(const Cfg& cfg, const iss::Program& program, FindingBuffer& buffer) {
  std::vector<std::uint32_t> roots = cfg.call_targets();
  roots.push_back(program.entry);
  std::set<std::size_t> seen_roots;
  RegDomain domain;
  for (std::uint32_t root : roots) {
    std::size_t entry = cfg.block_at(root);
    if (entry == Cfg::npos || !seen_roots.insert(entry).second) continue;
    DataflowResult<RegDomain> flow = run_forward(cfg, domain, kIntraprocEdges, entry);
    for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
      if (!flow.in[b]) continue;
      const CfgInstr& last = cfg.blocks()[b].instrs.back();
      if (!is_ret(last.instr)) continue;
      RegState state;
      if (!state_before(cfg, flow, domain, last.addr, state)) continue;
      const AbsValue& sp = state.regs[2];
      // Only a provable imbalance fires: sp must still be sp0-relative with
      // an exact non-zero offset. A repointed or unbounded sp stays silent.
      if (sp.is_sp_rel() && sp.range.is_exact() && sp.range.lo != 0) {
        buffer.add(Severity::Warning, "NL304", last.addr, 0,
                   "function entered at address " + std::to_string(root) + " returns with sp " +
                       std::to_string(sp.range.lo) + " bytes away from its entry value",
                   last.line);
      }
    }
  }
}

/// NL305: binding liveness. A bound variable must live inside the memory
/// map, and an iss_in-bound variable must be written on every path from the
/// entry to its breakpoint.
void check_binding_liveness(const Cfg& cfg, const DataflowResult<RegDomain>& flow,
                            const RegDomain& domain, const iss::Program& program,
                            const std::vector<cosim::PragmaBinding>& bindings,
                            const FlowOptions& options, FindingBuffer& buffer) {
  for (const cosim::PragmaBinding& b : bindings) {
    if (!program.has_symbol(b.variable)) continue;  // lint.variable-undefined already fired
    std::uint32_t var_addr = program.symbols.at(b.variable);
    if (static_cast<std::uint64_t>(var_addr) + 4 > options.mem_size) {
      buffer.add(Severity::Error, "NL305", var_addr, 0,
                 "variable '" + b.variable + "' bound to port '" + b.port + "' lives at address " +
                     std::to_string(var_addr) + ", outside the " +
                     std::to_string(options.mem_size) +
                     "-byte memory map; the binding can never carry data",
                 b.pragma_line);
      continue;
    }
    if (b.direction != cosim::BindDirection::IssToSc) continue;
    if (!program.has_symbol(b.label)) continue;
    int tracked = domain.tracked_index(var_addr);
    if (tracked < 0) continue;  // more bindings than tracked slots: stay silent
    RegState state;
    if (!state_before(cfg, flow, domain, program.symbols.at(b.label), state)) continue;
    if ((state.written & (std::uint64_t(1) << tracked)) == 0) {
      buffer.add(Severity::Warning, "NL305", var_addr, 1,
                 "variable '" + b.variable + "' bound to iss_in port '" + b.port +
                     "' may reach its breakpoint on line " + std::to_string(b.breakpoint_line) +
                     " without being written; the port would sample a stale value",
                 b.pragma_line);
    }
  }
}

// ---------------------------------------------------------------------------
// Interprocedural pass (NL311-NL315 + summary-driven re-checks).
// ---------------------------------------------------------------------------

/// NL313: a function whose summary shows a definite sp displacement at
/// return, where the imbalance flows through a callee (NL304 deliberately
/// trusts callees; this is its cross-call complement).
void check_cross_call_stack(const CallGraph& cg, const SummaryTable& table,
                            FindingBuffer& buffer) {
  for (std::size_t f = 0; f < cg.functions().size(); ++f) {
    const Function& fn = cg.functions()[f];
    const FunctionSummary& s = table.of(f);
    if (s.havoc || !s.reached_ret || !s.sp_delta || *s.sp_delta == 0) continue;
    for (std::size_t site_idx : fn.call_sites) {
      const FunctionSummary callee = table.at_site(cg, site_idx);
      if (callee.havoc || !callee.sp_delta || *callee.sp_delta == 0) continue;
      const CallSite& site = cg.sites()[site_idx];
      const std::string callee_name = callee_names(cg, site);
      for (const auto& [ret_addr, ret_line] : s.rets) {
        buffer.add_interproc(
            Severity::Warning, "NL313", ret_addr, 0,
            "function '" + fn.name + "' returns with sp " + std::to_string(*s.sp_delta) +
                " bytes away from its entry value; the imbalance flows through the call to '" +
                callee_name + "' on line " + std::to_string(site.line) + " (callee shifts sp by " +
                std::to_string(*callee.sp_delta) + ")",
            ret_line, 0);
      }
      break;  // one guilty callee is evidence enough
    }
  }
}

/// True when `exit` provably differs from the entry value of `r` for at
/// least one caller — i.e. the callee cannot be preserving the register.
bool definitely_clobbered(const AbsValue& exit, std::uint8_t r) {
  if (exit.base == AbsValue::Base::None && exit.range.is_exact()) return true;
  if (exit.base == AbsValue::Base::Entry && exit.entry_reg != r) return true;
  if (exit.is_entry_rel(r) && exit.range.is_exact() && exit.range.lo != 0) return true;
  return false;
}

std::string describe_exit_value(const AbsValue& exit, std::uint8_t r) {
  if (exit.base == AbsValue::Base::None && exit.range.is_exact()) {
    return "constant " + std::to_string(exit.range.lo);
  }
  if (exit.base == AbsValue::Base::Entry && exit.entry_reg != r) {
    return std::string("the entry value of ") + reg_name(exit.entry_reg);
  }
  return "its entry value plus " + std::to_string(exit.range.lo);
}

bool writes_reg(const iss::Instr& in, std::uint8_t r) {
  if (r == 0) return false;
  switch (in.op) {
    case Op::Sb: case Op::Sh: case Op::Sw:
    case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge: case Op::Bltu: case Op::Bgeu:
    case Op::Fence: case Op::Ebreak: case Op::Illegal:
      return false;
    case Op::Ecall:
      return r == 10;  // a0 carries the syscall result
    default:
      return in.rd == r;
  }
}

/// Forward scan from the instruction at `start_addr`: is register `r` read
/// before being definitely rewritten? Follows intraprocedural edges except
/// conservative indirect ones (evidence through a guessed edge is not
/// definite); calls are stepped through via their summaries. Returns the
/// first reading instruction, nullptr when r is dead or unprovable.
const CfgInstr* find_live_read(const Cfg& cfg, std::uint32_t start_addr, std::uint8_t r,
                               const std::map<std::uint32_t, FunctionSummary>& sites) {
  std::size_t b0 = cfg.block_at(start_addr);
  if (b0 == Cfg::npos) return nullptr;
  std::size_t start_index = 0;
  while (start_index < cfg.blocks()[b0].instrs.size() &&
         cfg.blocks()[b0].instrs[start_index].addr != start_addr) {
    ++start_index;
  }
  std::set<std::pair<std::size_t, std::size_t>> seen;
  std::vector<std::pair<std::size_t, std::size_t>> work{{b0, start_index}};
  seen.insert(work.front());
  while (!work.empty()) {
    auto [b, idx] = work.back();
    work.pop_back();
    const BasicBlock& block = cfg.blocks()[b];
    bool stopped = false;
    for (std::size_t i = idx; i < block.instrs.size(); ++i) {
      const CfgInstr& ci = block.instrs[i];
      for (std::uint8_t q : RegDomain::regs_read(ci.instr)) {
        if (q == r) return &ci;  // live: the caller value is consumed here
      }
      if (writes_reg(ci.instr, r)) {
        stopped = true;  // definitely rewritten: dead past here
        break;
      }
      if (is_call(ci.instr)) {
        auto it = sites.find(ci.addr);
        const FunctionSummary* s = it == sites.end() ? nullptr : &it->second;
        if (s == nullptr || s->havoc || !s->reached_ret) {
          stopped = true;  // unknown or no-return callee: no definite claim
          break;
        }
        if (s->read_of(r) != nullptr) return &ci;  // callee consumes the value
        if (!s->exit_regs[r].is_entry_identity(r)) {
          stopped = true;  // clobbered or unprovable across the call
          break;
        }
      }
    }
    if (stopped) continue;
    for (const CfgEdge& e : block.succs) {
      if ((edge_bit(e.kind) & kIntraprocEdges) == 0) continue;
      if (e.kind == EdgeKind::Indirect) continue;  // guessed edge: not definite
      auto next = std::make_pair(e.block, std::size_t{0});
      if (seen.insert(next).second) work.push_back(next);
    }
  }
  return nullptr;
}

/// NL314: a resolved callee provably fails to preserve a callee-saved
/// register that is live (and initialized) in the caller across the call.
/// Multi-target sites participate: the joined summary only proves a clobber
/// when every candidate target clobbers compatibly.
void check_abi_preservation(const Cfg& cfg, const CallGraph& cg, const SummaryTable& table,
                            const RegDomain& domain, const DataflowResult<RegDomain>& flow1,
                            FindingBuffer& buffer) {
  for (std::size_t site_idx = 0; site_idx < cg.sites().size(); ++site_idx) {
    const CallSite& site = cg.sites()[site_idx];
    if (!site.resolved || site.callees.empty()) continue;
    const FunctionSummary s = table.at_site(cg, site_idx);
    if (s.havoc || !s.reached_ret) continue;
    RegState before;
    if (!state_before(cfg, flow1, domain, site.addr, before)) continue;
    std::map<std::uint32_t, FunctionSummary> caller_sites = table.site_summaries(cg, site.caller);
    const std::string callee_name = callee_names(cg, site);
    for (std::uint8_t r : kCalleeSaved) {
      if (!definitely_clobbered(s.exit_regs[r], r)) continue;
      if (before.regs[r].init != AbsValue::Init::Init) continue;  // no caller value at stake
      const CfgInstr* read = find_live_read(cfg, site.addr + 4, r, caller_sites);
      if (read == nullptr) continue;
      buffer.add_interproc(
          Severity::Warning, "NL314", site.addr, r,
          "call to '" + callee_name + "' does not preserve callee-saved register " + reg_name(r) +
              " (it returns holding " + describe_exit_value(s.exit_regs[r], r) +
              "); the caller still reads its value on line " + std::to_string(read->line),
          site.line, 0);
    }
  }
}

/// NL315: an iss_in binding whose NL305 "may be stale" warning is explained
/// by all of its writes living in code unreachable from the entry. Replaces
/// the NL305 warning with the sharper dead-callee evidence.
void check_dead_binding_writes(const Cfg& cfg, const iss::Program& program,
                               const std::vector<cosim::PragmaBinding>& bindings,
                               const DataflowResult<RegDomain>& flow1, const RegDomain& domain,
                               const std::vector<bool>& reachable, FindingBuffer& buffer) {
  for (const cosim::PragmaBinding& b : bindings) {
    if (b.direction != cosim::BindDirection::IssToSc) continue;
    if (!program.has_symbol(b.variable)) continue;
    std::uint32_t var_addr = program.symbols.at(b.variable);
    if (!buffer.has("NL305", var_addr, 1)) continue;  // rides on the NL305 evidence
    // Any reachable store that can hit the variable keeps NL305 as-is.
    bool reachable_store = false;
    for (std::size_t blk = 0; blk < cfg.blocks().size() && !reachable_store; ++blk) {
      if (!flow1.in[blk]) continue;
      RegState state = *flow1.in[blk];
      for (const CfgInstr& ci : cfg.blocks()[blk].instrs) {
        if (is_store(ci.instr.op)) {
          AbsValue addr = RegDomain::effective_address(state, ci.instr);
          if (!addr.is_exact_addr() || static_cast<std::uint32_t>(addr.range.lo) == var_addr) {
            reachable_store = true;  // hits, or cannot be excluded
            break;
          }
        }
        domain.transfer(ci, state);
      }
    }
    if (reachable_store) continue;
    // Hunt the writer in unreachable functions: symbolic flow per dead label.
    for (const auto& [name, sym_addr] : program.symbols) {
      std::size_t dead_block = cfg.block_at(sym_addr);
      if (dead_block == Cfg::npos || reachable[dead_block]) continue;
      CallAwareDomain dead_domain(RegDomain(), symbolic_boundary(), {});
      DataflowResult<CallAwareDomain> dead_flow =
          run_forward(cfg, dead_domain, kIntraprocEdges, dead_block);
      const CfgInstr* writer = nullptr;
      for (std::size_t blk = 0; blk < cfg.blocks().size() && writer == nullptr; ++blk) {
        if (!dead_flow.in[blk]) continue;
        RegState state = *dead_flow.in[blk];
        for (const CfgInstr& ci : cfg.blocks()[blk].instrs) {
          if (is_store(ci.instr.op)) {
            AbsValue addr = RegDomain::effective_address(state, ci.instr);
            if (addr.is_exact_addr() && static_cast<std::uint32_t>(addr.range.lo) == var_addr) {
              writer = &ci;
              break;
            }
          }
          dead_domain.transfer(ci, state);
        }
      }
      if (writer != nullptr) {
        buffer.remove("NL305", var_addr, 1);
        buffer.add(Severity::Warning, "NL315", var_addr, 0,
                   "variable '" + b.variable + "' bound to iss_in port '" + b.port +
                       "' is only written in '" + name + "' (line " +
                       std::to_string(writer->line) +
                       "), which is unreachable from the program entry; the port would sample a "
                       "stale value",
                   b.pragma_line);
        break;
      }
    }
  }
}

/// The context handed to every function of a recursive SCC: unknown but
/// initialized, so no definite claim survives inside unresolved recursion.
RegState conservative_context() {
  RegState state;
  for (AbsValue& v : state.regs) v = AbsValue::top_init();
  state.regs[0] = AbsValue::exact(0);
  state.written = 0;
  return state;
}

/// Top-down context propagation over clones: each materialized (function,
/// k-limited call string) clone is re-analyzed on its own call-site state —
/// unjoined for distinct contexts, joined only where call strings collide
/// (always, when context_k == 0). The per-clone flow (a) re-runs the
/// NL302/NL303 value checks — findings dedupe with the whole-program pass
/// across clones thanks to the shared (rule, pc, operand) keys — and (b)
/// checks every call site's arguments against the callee summary resolved
/// under this clone's context: NL311 uninit argument, NL312 out-of-map
/// footprint, NL316 frame-over-binding and NL317 context-divergent clobber.
void run_context_pass(const Cfg& cfg, const CallGraph& cg, const SummaryTable& table,
                      const RegDomain& domain, const DataflowResult<RegDomain>& flow1,
                      const iss::Program& program,
                      const std::vector<cosim::PragmaBinding>& bindings,
                      const FlowOptions& options, FindingBuffer& buffer) {
  using CloneKey = std::pair<std::size_t, Context>;
  std::map<CloneKey, RegState> entry_state;
  std::map<CloneKey, int> via;
  const std::size_t k = table.context_k();
  if (cg.entry_function() != CallGraph::npos) {
    entry_state[{cg.entry_function(), Context{}}] = domain.boundary();
  }
  for (std::size_t si = cg.sccs().size(); si-- > 0;) {  // SCC list is bottom-up; walk top-down
    const std::vector<std::size_t>& scc = cg.sccs()[si];
    if (cg.scc_is_recursive(si)) {
      // Recursion keeps the conservative whole-SCC context: the clone table
      // holds root clones only for its members, and no definite entry claim
      // survives an unbounded chain of self-calls anyway.
      bool any = std::any_of(scc.begin(), scc.end(), [&](std::size_t f) {
        return entry_state.count({f, Context{}}) > 0;
      });
      if (!any) continue;
      for (std::size_t f : scc) entry_state[{f, Context{}}] = conservative_context();
    }
    for (std::size_t f : scc) {
      const Function& fn = cg.functions()[f];
      for (const Context& ctx : table.contexts_of(f)) {
        auto st = entry_state.find({f, ctx});
        if (st == entry_state.end()) continue;
        auto via_it = via.find({f, ctx});
        const int via_line = via_it == via.end() ? 0 : via_it->second;
        std::map<std::uint32_t, FunctionSummary> caller_sites = table.site_summaries(cg, f, ctx);
        CallAwareDomain fn_domain(RegDomain(domain.tracked()), st->second, caller_sites);
        DataflowResult<CallAwareDomain> flow =
            run_forward(cfg, fn_domain, kIntraprocEdges, fn.entry_block, 8, kNarrowSweeps);
        check_block_values(cfg, fn.blocks, flow, fn_domain, options, via_line, buffer);
        for (std::size_t site_idx : fn.call_sites) {
          const CallSite& site = cg.sites()[site_idx];
          RegState at_call;
          if (!state_before(cfg, flow, fn_domain, site.addr, at_call) || at_call.dead) continue;
          const CfgInstr* call_instr = cfg.instr_at(site.addr);
          fn_domain.inner().transfer(*call_instr, at_call);  // link register written
          const FunctionSummary s = table.at_site(cg, site_idx, ctx);
          const std::string callee_name =
              site.resolved ? callee_names(cg, site) : std::string();
          if (!s.havoc && site.resolved && !site.callees.empty()) {
            // NL311: the intersection semantics of the multi-target join
            // keep an entry read only when every candidate consumes it, so
            // the definite claim holds whichever target the call picks.
            for (const EntryRead& er : s.entry_reads) {
              if (er.reg == 0 || er.reg == 2) continue;
              if (at_call.regs[er.reg].init != AbsValue::Init::Uninit) continue;
              buffer.add_interproc(Severity::Warning, "NL311", site.addr, er.reg,
                                   "call to '" + callee_name + "' passes register " +
                                       reg_name(er.reg) +
                                       " which is never written on any path to the call; '" +
                                       callee_name + "' reads it on line " + std::to_string(er.line),
                                   site.line, via_line);
            }
          }
          if (!s.havoc && site.callees.size() == 1) {
            // NL312 stays single-target: a footprint entry of a joined
            // summary belongs to just one candidate, so "outside the map"
            // would only hold if the call picked that one.
            for (const MemAccess& m : s.mem) {
              const AbsValue& v = at_call.regs[m.entry_reg];
              if (v.base != AbsValue::Base::None || v.range.is_top()) continue;
              if (v.init != AbsValue::Init::Init) continue;
              Interval addr = v.range.plus(m.offset);
              if (addr.is_top()) continue;
              std::int64_t limit = static_cast<std::int64_t>(options.mem_size) - m.size;
              if (addr.lo > limit || addr.hi < 0) {
                std::string message = "call to '" + callee_name + "' passes ";
                message += reg_name(m.entry_reg);
                message += " = ";
                if (v.range.is_exact()) {
                  message += std::to_string(v.range.lo);
                } else {
                  message += "[";
                  message += std::to_string(v.range.lo);
                  message += ", ";
                  message += std::to_string(v.range.hi);
                  message += "]";
                }
                message += "; the ";
                message += m.is_store ? "store" : "load";
                message += " through it on line ";
                message += std::to_string(m.line);
                message += " falls outside the ";
                message += std::to_string(options.mem_size);
                message += "-byte memory map on every path";
                buffer.add_interproc(Severity::Error, "NL312", site.addr, m.addr,
                                     std::move(message), site.line, via_line);
              }
            }
          }
          // NL316: the clone's concrete stack pointer places the callee's
          // frame stores over a bound variable's word. sp must be an exact
          // absolute address — only an unjoined call string keeps it exact,
          // so context_k = 0 (joined sp interval) is the negative control.
          if (!s.havoc && site.resolved && !site.callees.empty()) {
            const AbsValue& sp = at_call.regs[2];
            if (sp.base == AbsValue::Base::None && sp.range.is_exact() &&
                sp.init == AbsValue::Init::Init) {
              const std::int64_t sp_val = sp.range.lo;
              for (const MemAccess& m : s.mem) {
                if (!m.is_store || m.entry_reg != 2 || !m.offset.is_exact()) continue;
                const std::int64_t lo = sp_val + m.offset.lo;
                const std::int64_t hi = lo + m.size;  // exclusive
                for (const cosim::PragmaBinding& b : bindings) {
                  if (!program.has_symbol(b.variable)) continue;
                  const std::int64_t var = program.symbols.at(b.variable);
                  if (hi <= var || lo >= var + 4) continue;
                  std::string message = "call to '" + callee_name + "' grows the stack over '";
                  message += b.variable;
                  message += "' (bound to port '";
                  message += b.port;
                  message += "'): sp is ";
                  message += std::to_string(sp_val);
                  message += " here and the callee stores ";
                  message += std::to_string(m.size);
                  message += " bytes at sp";
                  message += (m.offset.lo >= 0 ? "+" : "");
                  message += std::to_string(m.offset.lo);
                  message += " (line ";
                  message += std::to_string(m.line);
                  message += "), clobbering address ";
                  message += std::to_string(lo);
                  if (!ctx.empty()) {
                    message += " [call string: ";
                    message += context_label(cg, ctx);
                    message += "]";
                  }
                  buffer.add_interproc(Severity::Error, "NL316", site.addr, m.addr,
                                       std::move(message), site.line, via_line);
                }
              }
            }
          }
          // NL317: under this call string the caller's callee-saved value is
          // provably initialized and provably clobbered, but the
          // context-joined view NL314 works from only sees a Mixed
          // initialization — the defect exists on one call path and the
          // join masked it.
          if (!s.havoc && s.reached_ret && site.resolved && !site.callees.empty()) {
            RegState whole;
            if (state_before(cfg, flow1, domain, site.addr, whole)) {
              for (std::uint8_t r : kCalleeSaved) {
                if (!definitely_clobbered(s.exit_regs[r], r)) continue;
                if (at_call.regs[r].init != AbsValue::Init::Init) continue;
                if (whole.regs[r].init != AbsValue::Init::Mixed) continue;
                if (buffer.has("NL314", site.addr, r)) continue;
                const CfgInstr* read = find_live_read(cfg, site.addr + 4, r, caller_sites);
                if (read == nullptr) continue;
                std::string message = "call to '" + callee_name +
                                      "' does not preserve callee-saved register ";
                message += reg_name(r);
                message += " (it returns holding ";
                message += describe_exit_value(s.exit_regs[r], r);
                message += ") and the caller still reads its value on line ";
                message += std::to_string(read->line);
                message += "; the clobbered value is live only on the call path";
                if (!ctx.empty()) {
                  message += " [call string: ";
                  message += context_label(cg, ctx);
                  message += "]";
                }
                message += ", so the context-joined view cannot prove it";
                buffer.add_interproc(Severity::Warning, "NL317", site.addr, r,
                                     std::move(message), site.line, via_line);
              }
            }
          }
          // Propagate this clone's call-site state to every resolved
          // callee's matching clone (root when the exact call string was
          // never materialized — recursion, clone-cap overflow, k = 0).
          if (site.resolved) {
            const Context callee_ctx = context_push(ctx, site_idx, k);
            for (std::size_t callee : site.callees) {
              const std::vector<Context>& known = table.contexts_of(callee);
              const Context& target =
                  std::find(known.begin(), known.end(), callee_ctx) != known.end() ? callee_ctx
                                                                                   : Context{};
              CloneKey ck{callee, target};
              auto it = entry_state.find(ck);
              if (it == entry_state.end()) {
                entry_state.emplace(std::move(ck), at_call);
                via[{callee, target}] = site.line;
              } else {
                domain.join(it->second, at_call);
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

void check_flow(const iss::Program& program, const std::vector<cosim::PragmaBinding>& bindings,
                const FlowOptions& options, const FlowReport& report,
                std::string* summaries_json, FlowStats* stats) {
  Cfg cfg = Cfg::build(program);
  if (cfg.blocks().empty() || cfg.entry() == Cfg::npos) return;

  std::vector<std::uint32_t> tracked;
  for (const cosim::PragmaBinding& b : bindings) {
    if (b.direction == cosim::BindDirection::IssToSc && program.has_symbol(b.variable)) {
      tracked.push_back(program.symbols.at(b.variable));
    }
  }
  RegDomain domain(std::move(tracked));

  std::vector<bool> reachable = reachable_blocks(cfg, cfg.entry(), kInterprocEdges);
  DataflowResult<RegDomain> flow = run_forward(cfg, domain, kInterprocEdges, cfg.entry());

  FindingBuffer buffer;
  std::vector<std::size_t> all_blocks(cfg.blocks().size());
  for (std::size_t b = 0; b < all_blocks.size(); ++b) all_blocks[b] = b;

  check_reachability(cfg, program, bindings, reachable, buffer);
  check_block_values(cfg, all_blocks, flow, domain, options, 0, buffer);
  check_stack_balance(cfg, program, buffer);
  check_binding_liveness(cfg, flow, domain, program, bindings, options, buffer);

  if (options.interproc) {
    CallGraph cg = CallGraph::build(cfg, program);
    if (!cg.functions().empty()) {
      SummaryTable table = SummaryTable::compute(cfg, cg, domain.tracked(), options.context_k);
      check_cross_call_stack(cg, table, buffer);
      check_abi_preservation(cfg, cg, table, domain, flow, buffer);
      check_dead_binding_writes(cfg, program, bindings, flow, domain, reachable, buffer);
      run_context_pass(cfg, cg, table, domain, flow, program, bindings, options, buffer);
      if (summaries_json != nullptr) *summaries_json = render_summaries_json(cg, table);
      if (stats != nullptr) {
        const SummaryStats& ss = table.stats();
        stats->functions = ss.functions;
        stats->clones = ss.clones;
        stats->havoc_summaries = ss.havoc_summaries;
        stats->narrowing_iterations = ss.narrowing_iterations;
        stats->clone_overflows = ss.clone_overflows;
      }
    }
  }

  buffer.flush(report);
}

}  // namespace nisc::analysis
