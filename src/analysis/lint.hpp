// cosim-lint: static analysis of guest assembly programs and their pragma
// port bindings — the paper's §3.2 filter tool grown into a checker.
//
// Rules (all locations refer to the original, unfiltered source):
//  * lint.pragma (error): malformed #pragma iss_in/iss_out, or a pragma with
//    no statement to attach its breakpoint to (breakpoint on a missing
//    line).
//  * lint.asm (error): the program does not assemble — undefined labels,
//    unknown mnemonics, bad operands (assembler messages, re-homed to the
//    original line numbers). All errors in the file are reported in one
//    pass, not just the first.
//  * lint.label-redefined (error): a label is defined twice; the first
//    definition wins for the rest of the analysis.
//  * lint.duplicate-binding (error): the same iss port bound by two pragmas
//    of the same direction.
//  * lint.conflicting-binding (error): the same iss port bound as both
//    iss_in and iss_out.
//  * lint.unknown-port (error, needs LintOptions::known_ports): a pragma
//    names a port outside the declared design port list.
//  * lint.variable-undefined (error): a bound guest variable is not a symbol
//    of the assembled program.
//  * lint.variable-unused (warning): a bound variable is never read or
//    written by any instruction — the binding can never carry data.
//  * lint.bind-direction (warning): an iss_in pragma annotates a statement
//    that is not a store (the guest must write the variable before the
//    breakpoint), or an iss_out pragma annotates one that is not a load.
//  * NL301..NL305 (see analysis/flow.hpp): flow-sensitive rules over the
//    assembled program's CFG — breakpoint reachability, uninitialized
//    register reads, provably out-of-map accesses, stack balance, and
//    binding liveness. They run only when the program assembled cleanly and
//    can be disabled wholesale with LintOptions::flow = false.
//  * NL311..NL317 (see analysis/flow.hpp): interprocedural rules over the
//    call graph and context-sensitive function summaries — uninitialized
//    call arguments, out-of-map accesses through helpers, cross-call stack
//    imbalance, callee-saved register clobbers, bindings written only in
//    dead code, stack growth over a binding, and context-divergent clobbers.
//    Disabled with LintOptions::interproc = false; the call-string depth of
//    the clone pass is LintOptions::context_k.
//
// Inline suppression: a `nolint` token in a comment on the offending line
// silences all rules for that line; `nolint(rule-a,rule-b)` silences only
// the listed rules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diag.hpp"
#include "cosim/pragma.hpp"
#include "iss/program.hpp"

namespace nisc::analysis {

struct LintOptions {
  /// When non-empty, pragma port names must appear in this list.
  std::vector<std::string> known_ports;
  /// Load address passed to the assembler.
  std::uint32_t base = 0;
  /// Run the flow-sensitive NL3xx rules (CFG + abstract interpretation).
  bool flow = true;
  /// Run the interprocedural pass (call graph, summaries, NL31x rules).
  bool interproc = true;
  /// Call-string depth for context-sensitive summaries and the clone pass
  /// (0 = context-insensitive, the pre-context behavior).
  std::size_t context_k = 1;
  /// Guest memory map size the NL303/NL305 in-map checks use.
  std::uint64_t mem_size = std::uint64_t(1) << 20;
};

/// Precision counters from the interprocedural pass (cosim_lint --stats).
struct LintStats {
  std::size_t functions = 0;
  std::size_t clones = 0;
  std::size_t havoc_summaries = 0;
  std::size_t narrowing_iterations = 0;
  std::size_t clone_overflows = 0;
};

struct LintResult {
  bool assembled = false;                        ///< program assembled cleanly
  iss::Program program;                          ///< valid when assembled
  std::vector<cosim::PragmaBinding> bindings;    ///< parsed pragma bindings
  /// `"context_k":K,"functions":[...]` summary-dump fragment from the
  /// interprocedural pass; empty when the pass did not run (summary.hpp).
  std::string summaries_json;
  /// Precision counters; all zero when the interprocedural pass did not run.
  LintStats stats;
};

/// Lints one guest program. `file` is used in diagnostic locations.
LintResult lint_guest_source(std::string_view source, const std::string& file,
                             DiagEngine& diags, const LintOptions& options = {});

}  // namespace nisc::analysis
