// Shared diagnostics engine for the analysis subsystem (cosim-lint, the
// delta-cycle race detector, the elaboration checks and the IPC frame
// validator all report through it).
//
// A Diagnostic is (severity, rule, message, source location). Rules are
// stable dotted identifiers ("race.write-write", "lint.variable-unused",
// ...) listed in DESIGN.md; per-rule suppression filters diagnostics at
// report time, so suppressed rules cost nothing downstream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace nisc::analysis {

enum class Severity : std::uint8_t { Note = 0, Warning = 1, Error = 2 };

const char* severity_name(Severity severity) noexcept;

/// A position in an input artifact. `file` may name a real file, a synthetic
/// source ("<builtin:checksum_gdb>") or a frame buffer; line 0 means "no
/// line information" (e.g. simulation-time diagnostics).
struct SourceLoc {
  std::string file;
  int line = 0;
  int column = 0;

  bool valid() const noexcept { return line > 0 || !file.empty(); }
  /// "file:line:column", omitting absent parts.
  std::string to_string() const;

  bool operator==(const SourceLoc&) const = default;
};

struct Diagnostic {
  Severity severity = Severity::Warning;
  std::string rule;     ///< stable dotted rule id
  std::string message;  ///< human-readable explanation
  SourceLoc loc;

  /// "file:line: error: message [rule]" (the text emitter's line format).
  std::string to_string() const;
};

/// Collects diagnostics; applies per-rule suppression at report time.
class DiagEngine {
 public:
  /// Records `diag` unless its rule is suppressed.
  void report(Diagnostic diag);
  void report(Severity severity, std::string rule, std::string message, SourceLoc loc = {});

  /// Suppresses every future diagnostic carrying `rule`.
  void suppress_rule(std::string rule) { suppressed_rules_.insert(std::move(rule)); }
  bool rule_suppressed(std::string_view rule) const {
    return suppressed_rules_.count(std::string(rule)) > 0;
  }

  const std::vector<Diagnostic>& diagnostics() const noexcept { return diagnostics_; }
  std::size_t count(Severity severity) const noexcept;
  std::size_t errors() const noexcept { return count(Severity::Error); }
  std::size_t warnings() const noexcept { return count(Severity::Warning); }
  bool empty() const noexcept { return diagnostics_.empty(); }

  /// True when at least one recorded diagnostic carries `rule`.
  bool has_rule(std::string_view rule) const noexcept;

  /// Diagnostics dropped by suppression since construction / clear().
  std::size_t suppressed_count() const noexcept { return suppressed_count_; }

  void clear() {
    diagnostics_.clear();
    suppressed_count_ = 0;
  }

 private:
  std::vector<Diagnostic> diagnostics_;
  std::set<std::string, std::less<>> suppressed_rules_;
  std::size_t suppressed_count_ = 0;
};

/// One line per diagnostic plus a summary line ("2 errors, 1 warning").
std::string render_text(const DiagEngine& engine);

/// Machine-readable report:
///   {"diagnostics":[{"severity":"error","rule":"...","message":"...",
///     "file":"...","line":N,"column":N}],"errors":N,"warnings":N,
///     "suppressed":N}
/// `extra_json`, when non-empty, is appended verbatim as additional
/// top-level members (it must be one or more `"key":value` fragments).
std::string render_json(const DiagEngine& engine, std::string_view extra_json = {});

/// Escapes a string for embedding in a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

}  // namespace nisc::analysis
