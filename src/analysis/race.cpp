#include "analysis/race.hpp"

#include <algorithm>

namespace nisc::analysis {

namespace {

bool contains(const std::vector<const sysc::sc_process*>& v, const sysc::sc_process* p) {
  return std::find(v.begin(), v.end(), p) != v.end();
}

std::string process_name(const sysc::sc_process* p) {
  return p != nullptr ? p->name() : std::string("<non-process>");
}

}  // namespace

void race_monitor::on_channel_write(const sysc::sc_object& channel,
                                    const sysc::sc_process* writer, std::uint64_t delta) {
  (void)delta;
  if (writer == nullptr) return;  // testbench writes order deterministically
  ChannelAccess& access = accesses_[&channel];
  if (!contains(access.writers, writer)) access.writers.push_back(writer);
}

void race_monitor::on_channel_read(const sysc::sc_object& channel,
                                   const sysc::sc_process* reader, std::uint64_t delta) {
  (void)delta;
  if (reader == nullptr) return;
  ChannelAccess& access = accesses_[&channel];
  if (!contains(access.readers, reader)) access.readers.push_back(reader);
}

void race_monitor::on_delta_end(sysc::sc_simcontext& ctx, std::uint64_t delta) {
  (void)ctx;
  flush(delta);
}

void race_monitor::flush(std::uint64_t delta) {
  for (auto& [channel, access] : accesses_) {
    if (access.writers.size() >= 2) {
      ++total_races_;
      std::string key = std::string("race.write-write\0", 17) + channel->name();
      if (reported_.insert(key).second) {
        std::string who = process_name(access.writers[0]);
        for (std::size_t i = 1; i < access.writers.size(); ++i) {
          who += ", " + process_name(access.writers[i]);
        }
        diags_->report(Severity::Error, "race.write-write",
                       "signal '" + channel->name() + "' written by " +
                           std::to_string(access.writers.size()) + " processes (" + who +
                           ") in delta " + std::to_string(delta) +
                           "; last-dispatched writer wins nondeterministically");
      }
    }
    if (!access.writers.empty() && !access.readers.empty()) {
      for (const sysc::sc_process* reader : access.readers) {
        bool foreign_write = false;
        for (const sysc::sc_process* writer : access.writers) {
          if (writer != reader) foreign_write = true;
        }
        if (!foreign_write) continue;
        ++total_races_;
        std::string key = std::string("race.read-after-write\0", 22) + channel->name();
        if (reported_.insert(key).second) {
          diags_->report(Severity::Warning, "race.read-after-write",
                         "signal '" + channel->name() + "' read by '" + process_name(reader) +
                             "' in the same delta (" + std::to_string(delta) +
                             ") another process writes it; the observed value is "
                             "evaluation-order dependent");
        }
        break;  // one report per channel per delta is enough
      }
    }
    access.writers.clear();
    access.readers.clear();
  }
}

}  // namespace nisc::analysis
