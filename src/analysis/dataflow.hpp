// Generic forward worklist dataflow over a Cfg.
//
// A Domain supplies the lattice and the transfer function:
//
//   struct Domain {
//     using State = ...;                              // one lattice element
//     State boundary() const;                         // state at the entry
//     bool join(State& into, const State& from) const;   // true when changed
//     bool widen(State& into, const State& from) const;  // accelerated join
//     void transfer(const CfgInstr& instr, State& state) const;
//   };
//
// run_forward() iterates block transfer functions in reverse post-order
// until the fixpoint, switching join to widen once a block has been
// re-joined `widen_after` times (interval lattices have infinite ascending
// chains; finite lattices can alias widen to join). Only edges selected by
// `mask` propagate state, so one Cfg serves both the interprocedural view
// (kInterprocEdges) and the per-function view (kIntraprocEdges).
//
// When `narrow_rounds > 0` and the Domain additionally supplies
//   bool narrow(State& into, const State& from) const;  // descending step
// the widened fixpoint is refined by up to that many bounded descending
// sweeps: each sweep recomputes every in-state as the plain join of its
// (narrowed) predecessors, re-runs the transfers, and narrows the stored
// out-state toward the recomputed one. Starting from a post-fixpoint with a
// monotone transfer, every intermediate sweep remains a sound
// over-approximation — stopping at the bound is always safe, it just keeps
// some widened bound. `narrow_iters`, when non-null, is incremented once
// per executed sweep (precision accounting for cosim_lint --stats).
//
// Unreachable blocks keep std::nullopt states — analyses must not report
// from them.
#pragma once

#include <concepts>
#include <optional>
#include <vector>

#include "analysis/cfg.hpp"

namespace nisc::analysis {

/// Blocks reachable from `from` following edges in `mask`.
std::vector<bool> reachable_blocks(const Cfg& cfg, std::size_t from, EdgeMask mask);

/// Reverse post-order of the blocks reachable from `from` under `mask` —
/// the iteration order that converges fastest for forward problems.
std::vector<std::size_t> reverse_post_order(const Cfg& cfg, std::size_t from, EdgeMask mask);

template <class Domain>
struct DataflowResult {
  /// Per-block states; nullopt marks blocks the analysis never reached.
  std::vector<std::optional<typename Domain::State>> in;
  std::vector<std::optional<typename Domain::State>> out;
};

template <class Domain>
DataflowResult<Domain> run_forward(const Cfg& cfg, const Domain& domain, EdgeMask mask,
                                   std::size_t entry, int widen_after = 8,
                                   int narrow_rounds = 0, std::size_t* narrow_iters = nullptr) {
  DataflowResult<Domain> result;
  result.in.resize(cfg.blocks().size());
  result.out.resize(cfg.blocks().size());
  if (entry == Cfg::npos || entry >= cfg.blocks().size()) return result;

  const std::vector<std::size_t> order = reverse_post_order(cfg, entry, mask);
  std::vector<int> joins(cfg.blocks().size(), 0);

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b : order) {
      // In-state: boundary at the entry, join of predecessor out-states.
      std::optional<typename Domain::State> in;
      if (b == entry) in = domain.boundary();
      for (const CfgEdge& pred : cfg.blocks()[b].preds) {
        if ((edge_bit(pred.kind) & mask) == 0) continue;
        const auto& pred_out = result.out[pred.block];
        if (!pred_out) continue;
        if (!in) {
          in = *pred_out;
        } else if (joins[b] > widen_after) {
          domain.widen(*in, *pred_out);
        } else {
          domain.join(*in, *pred_out);
        }
      }
      if (!in) continue;  // not yet reached

      typename Domain::State out = *in;
      for (const CfgInstr& instr : cfg.blocks()[b].instrs) domain.transfer(instr, out);

      result.in[b] = std::move(in);
      bool out_changed;
      if (!result.out[b]) {
        result.out[b] = std::move(out);
        out_changed = true;
      } else if (joins[b] > widen_after) {
        out_changed = domain.widen(*result.out[b], out);
      } else {
        out_changed = domain.join(*result.out[b], out);
      }
      if (out_changed) {
        ++joins[b];
        changed = true;
      }
    }
  }

  // Bounded descending sweeps: undo the precision the widening gave away.
  if constexpr (requires(typename Domain::State& a, const typename Domain::State& b) {
                  { domain.narrow(a, b) } -> std::convertible_to<bool>;
                }) {
    for (int round = 0; round < narrow_rounds; ++round) {
      bool narrowed = false;
      for (std::size_t b : order) {
        std::optional<typename Domain::State> in;
        if (b == entry) in = domain.boundary();
        for (const CfgEdge& pred : cfg.blocks()[b].preds) {
          if ((edge_bit(pred.kind) & mask) == 0) continue;
          const auto& pred_out = result.out[pred.block];
          if (!pred_out) continue;
          if (!in) {
            in = *pred_out;
          } else {
            domain.join(*in, *pred_out);
          }
        }
        if (!in || !result.out[b]) continue;
        typename Domain::State out = *in;
        for (const CfgInstr& instr : cfg.blocks()[b].instrs) domain.transfer(instr, out);
        narrowed = domain.narrow(*result.out[b], out) || narrowed;
        if (result.in[b]) narrowed = domain.narrow(*result.in[b], *in) || narrowed;
      }
      if (narrow_iters != nullptr) ++*narrow_iters;
      if (!narrowed) break;
    }
  }
  return result;
}

}  // namespace nisc::analysis
