#include "analysis/diag.hpp"

#include <cstdio>
#include <sstream>

namespace nisc::analysis {

const char* severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string SourceLoc::to_string() const {
  std::string out = file;
  if (line > 0) {
    out += ':';
    out += std::to_string(line);
    if (column > 0) {
      out += ':';
      out += std::to_string(column);
    }
  }
  return out;
}

std::string Diagnostic::to_string() const {
  std::string out;
  if (loc.valid()) {
    out += loc.to_string();
    out += ": ";
  }
  out += severity_name(severity);
  out += ": ";
  out += message;
  out += " [";
  out += rule;
  out += ']';
  return out;
}

void DiagEngine::report(Diagnostic diag) {
  if (rule_suppressed(diag.rule)) {
    ++suppressed_count_;
    return;
  }
  diagnostics_.push_back(std::move(diag));
}

void DiagEngine::report(Severity severity, std::string rule, std::string message, SourceLoc loc) {
  report(Diagnostic{severity, std::move(rule), std::move(message), std::move(loc)});
}

std::size_t DiagEngine::count(Severity severity) const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

bool DiagEngine::has_rule(std::string_view rule) const noexcept {
  for (const Diagnostic& d : diagnostics_) {
    if (d.rule == rule) return true;
  }
  return false;
}

std::string render_text(const DiagEngine& engine) {
  std::string out;
  for (const Diagnostic& d : engine.diagnostics()) {
    out += d.to_string();
    out += '\n';
  }
  std::size_t errors = engine.errors();
  std::size_t warnings = engine.warnings();
  out += std::to_string(errors) + (errors == 1 ? " error, " : " errors, ");
  out += std::to_string(warnings) + (warnings == 1 ? " warning" : " warnings");
  if (engine.suppressed_count() > 0) {
    out += " (" + std::to_string(engine.suppressed_count()) + " suppressed)";
  }
  out += '\n';
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_json(const DiagEngine& engine, std::string_view extra_json) {
  std::ostringstream out;
  out << "{\"schema\":1,\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : engine.diagnostics()) {
    if (!first) out << ',';
    first = false;
    out << "{\"severity\":\"" << severity_name(d.severity) << "\""
        << ",\"rule\":\"" << json_escape(d.rule) << "\""
        << ",\"message\":\"" << json_escape(d.message) << "\""
        << ",\"file\":\"" << json_escape(d.loc.file) << "\""
        << ",\"line\":" << d.loc.line << ",\"column\":" << d.loc.column << '}';
  }
  out << "],\"errors\":" << engine.errors() << ",\"warnings\":" << engine.warnings()
      << ",\"suppressed\":" << engine.suppressed_count();
  if (!extra_json.empty()) out << ',' << extra_json;
  out << "}";
  return out.str();
}

}  // namespace nisc::analysis
