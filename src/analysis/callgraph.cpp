#include "analysis/callgraph.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace nisc::analysis {
namespace {

using iss::Op;

bool is_call(const iss::Instr& in) noexcept {
  return (in.op == Op::Jal || in.op == Op::Jalr) && in.rd != 0;
}

/// Iterative Tarjan SCC over the function-level call relation. Components
/// are emitted callees-first, i.e. already in the bottom-up order the
/// summary pass wants.
struct Tarjan {
  const std::vector<std::vector<std::size_t>>& succs;
  std::vector<int> index, lowlink;
  std::vector<bool> on_stack;
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  int next_index = 0;

  explicit Tarjan(const std::vector<std::vector<std::size_t>>& s)
      : succs(s), index(s.size(), -1), lowlink(s.size(), 0), on_stack(s.size(), false) {}

  void run() {
    for (std::size_t v = 0; v < succs.size(); ++v) {
      if (index[v] < 0) visit(v);
    }
  }

  void visit(std::size_t root) {
    // Explicit DFS stack: (node, next successor position to explore).
    std::vector<std::pair<std::size_t, std::size_t>> work{{root, 0}};
    while (!work.empty()) {
      auto& [v, pos] = work.back();
      if (pos == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      if (pos < succs[v].size()) {
        std::size_t w = succs[v][pos++];
        if (index[w] < 0) {
          work.emplace_back(w, 0);
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        std::vector<std::size_t> scc;
        std::size_t w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc.push_back(w);
        } while (w != v);
        sccs.push_back(std::move(scc));
      }
      std::size_t finished = v;
      work.pop_back();
      if (!work.empty()) {
        std::size_t parent = work.back().first;
        lowlink[parent] = std::min(lowlink[parent], lowlink[finished]);
      }
    }
  }
};

}  // namespace

CallGraph CallGraph::build(const Cfg& cfg, const iss::Program& program) {
  CallGraph cg;
  if (cfg.empty()) return cg;

  // Function roots: the program entry plus every call target the CFG saw.
  std::set<std::uint32_t> roots;
  if (cfg.entry() != Cfg::npos) roots.insert(cfg.blocks()[cfg.entry()].start);
  for (std::uint32_t t : cfg.call_targets()) roots.insert(t);

  std::map<std::uint32_t, std::size_t> fn_of_entry;
  for (std::uint32_t entry_addr : roots) {
    std::size_t entry_block = cfg.block_at(entry_addr);
    if (entry_block == Cfg::npos) continue;
    Function fn;
    fn.entry_addr = entry_addr;
    fn.entry_block = entry_block;
    for (const auto& [name, addr] : program.symbols) {
      if (addr == entry_addr) {
        fn.name = name;
        break;
      }
    }
    if (fn.name.empty()) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "fn_%x", entry_addr);
      fn.name = buf;
    }
    fn_of_entry[entry_addr] = cg.functions_.size();
    cg.functions_.push_back(std::move(fn));
  }
  if (cg.functions_.empty()) return cg;

  // Body = intra-procedural reachability from the entry block. Blocks can
  // belong to several functions (shared tails); each function analyzes its
  // own view.
  for (Function& fn : cg.functions_) {
    std::vector<bool> seen(cfg.blocks().size(), false);
    std::vector<std::size_t> work{fn.entry_block};
    seen[fn.entry_block] = true;
    while (!work.empty()) {
      std::size_t b = work.back();
      work.pop_back();
      fn.blocks.push_back(b);
      for (const CfgEdge& e : cfg.blocks()[b].succs) {
        if (!(edge_bit(e.kind) & kIntraprocEdges)) continue;
        if (!seen[e.block]) {
          seen[e.block] = true;
          work.push_back(e.block);
        }
      }
    }
    std::sort(fn.blocks.begin(), fn.blocks.end());
  }

  // Call sites: the terminating call of any body block. The CFG already
  // resolved targets (direct: the jal target; indirect: Call edges to the
  // conservative target set), so callees are read off the edge list.
  const bool indirect_resolved = std::any_of(
      program.address_taken.begin(), program.address_taken.end(),
      [&](std::uint32_t addr) { return cfg.block_at(addr) != Cfg::npos; });
  for (std::size_t f = 0; f < cg.functions_.size(); ++f) {
    for (std::size_t b : cg.functions_[f].blocks) {
      const BasicBlock& block = cfg.blocks()[b];
      const CfgInstr& last = block.instrs.back();
      if (!is_call(last.instr)) continue;
      CallSite site;
      site.addr = last.addr;
      site.line = last.line;
      site.caller = f;
      site.indirect = last.instr.op == Op::Jalr;
      site.resolved = !site.indirect || indirect_resolved;
      std::set<std::size_t> callees;
      for (const CfgEdge& e : block.succs) {
        if (e.kind != EdgeKind::Call) continue;
        auto it = fn_of_entry.find(cfg.blocks()[e.block].start);
        if (it != fn_of_entry.end()) callees.insert(it->second);
      }
      site.callees.assign(callees.begin(), callees.end());
      if (site.callees.empty()) site.resolved = false;  // call into data / nothing
      cg.functions_[f].call_sites.push_back(cg.sites_.size());
      cg.sites_.push_back(std::move(site));
    }
  }

  // Condense to SCCs, bottom-up.
  std::vector<std::vector<std::size_t>> succs(cg.functions_.size());
  for (const CallSite& site : cg.sites_) {
    for (std::size_t callee : site.callees) succs[site.caller].push_back(callee);
  }
  Tarjan tarjan(succs);
  tarjan.run();
  cg.sccs_ = std::move(tarjan.sccs);
  for (std::size_t s = 0; s < cg.sccs_.size(); ++s) {
    for (std::size_t f : cg.sccs_[s]) cg.functions_[f].scc = s;
  }

  if (cfg.entry() != Cfg::npos) {
    auto it = fn_of_entry.find(cfg.blocks()[cfg.entry()].start);
    if (it != fn_of_entry.end()) cg.entry_function_ = it->second;
  }
  return cg;
}

bool CallGraph::scc_is_recursive(std::size_t scc) const noexcept {
  if (scc >= sccs_.size()) return false;
  if (sccs_[scc].size() > 1) return true;
  std::size_t fn = sccs_[scc].front();
  for (std::size_t s : functions_[fn].call_sites) {
    for (std::size_t callee : sites_[s].callees) {
      if (callee == fn) return true;
    }
  }
  return false;
}

std::size_t CallGraph::function_at(std::uint32_t addr) const noexcept {
  for (std::size_t f = 0; f < functions_.size(); ++f) {
    if (functions_[f].entry_addr == addr) return f;
  }
  return npos;
}

}  // namespace nisc::analysis
