#include "analysis/protocol.hpp"

#include <algorithm>
#include <cctype>

#include "cosim/worker.hpp"
#include "ipc/message.hpp"

namespace nisc::analysis {

namespace {

// Driver-Kernel model symbol ids match ipc::MsgType so the decoder is a cast.
constexpr int kDkRead = 0;
constexpr int kDkWrite = 1;
constexpr int kDkReadReply = 2;
constexpr int kDkInterrupt = 3;
constexpr int kDkGarbage = 4;
constexpr int kChData = 0;
constexpr int kChIrq = 1;

// RSP model symbol ids (shared by gdb-kernel and gdb-wrapper).
constexpr int kRspQuery = 0;
constexpr int kRspCont = 1;
constexpr int kRspKill = 2;
constexpr int kRspRunQuantum = 3;
constexpr int kRspIrqByte = 4;
constexpr int kRspReply = 5;
constexpr int kRspStopReply = 6;
constexpr int kRspGarbage = 7;
constexpr int kChRsp = 0;

// Worker model symbol ids (supervisor <-> cosim_issworker recovery wire).
constexpr int kWkHello = 0;
constexpr int kWkStart = 1;
constexpr int kWkResume = 2;
constexpr int kWkDevWrite = 3;
constexpr int kWkWriteAck = 4;
constexpr int kWkDevRead = 5;
constexpr int kWkReadReply = 6;
constexpr int kWkIrq = 7;
constexpr int kWkCkpt = 8;
constexpr int kWkDone = 9;
constexpr int kWkClockSync = 10;
constexpr int kWkClockSyncAck = 11;
constexpr int kWkPullObs = 12;
constexpr int kWkObsReport = 13;
constexpr int kWkGarbage = 14;

}  // namespace

// ---------------------------------------------------------------------------
// Automaton structure

int ProtocolAutomaton::add_state(std::string name, bool accepting, bool closed) {
  states_.push_back(ProtoState{std::move(name), accepting, closed});
  by_state_.emplace_back();
  return static_cast<int>(states_.size()) - 1;
}

ProtoTransition& ProtocolAutomaton::send(int from, int symbol, int channel, int to,
                                         bool recovery) {
  auto& out = by_state_[static_cast<std::size_t>(from)];
  out.push_back(ProtoTransition{ActionKind::Send, symbol, channel, to, recovery, {}});
  return out.back();
}

ProtoTransition& ProtocolAutomaton::recv(int from, int symbol, int channel, int to,
                                         bool recovery) {
  auto& out = by_state_[static_cast<std::size_t>(from)];
  out.push_back(ProtoTransition{ActionKind::Recv, symbol, channel, to, recovery, {}});
  return out.back();
}

ProtoTransition& ProtocolAutomaton::internal(int from, int to, std::string label, bool recovery) {
  auto& out = by_state_[static_cast<std::size_t>(from)];
  out.push_back(ProtoTransition{ActionKind::Internal, -1, -1, to, recovery, std::move(label)});
  return out.back();
}

void ProtocolAutomaton::set_awaiting(int state, int effect) {
  states_[static_cast<std::size_t>(state)].awaiting_effect = effect;
}

int ProtocolAutomaton::find_state(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Models

const char* model_name(ModelId id) noexcept {
  switch (id) {
    case ModelId::DriverKernel: return "driver-kernel";
    case ModelId::GdbKernel: return "gdb-kernel";
    case ModelId::GdbWrapper: return "gdb-wrapper";
    case ModelId::Worker: return "worker";
    case ModelId::DriverIrq: return "driver-irq";
  }
  return "?";
}

std::optional<ModelId> model_from_name(std::string_view name) noexcept {
  if (name == "driver-kernel") return ModelId::DriverKernel;
  if (name == "gdb-kernel") return ModelId::GdbKernel;
  if (name == "gdb-wrapper") return ModelId::GdbWrapper;
  if (name == "worker") return ModelId::Worker;
  if (name == "driver-irq") return ModelId::DriverIrq;
  return std::nullopt;
}

bool ProtocolModel::monitored(int channel) const noexcept {
  return std::find(monitored_channels.begin(), monitored_channels.end(), channel) !=
         monitored_channels.end();
}

const std::string& ProtocolModel::symbol_name(int symbol) const {
  return symbols[static_cast<std::size_t>(symbol)];
}

const std::string& ProtocolModel::channel_name(int channel) const {
  return channels[static_cast<std::size_t>(channel)];
}

int ProtocolModel::channel_id(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (channels[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

/// Driver-Kernel (paper §4.2 + the PR 2 quiesce degradation). Endpoint A is
/// DriverKernelExtension (SystemC kernel), endpoint B is ScPortDriver.
ProtocolModel make_driver_kernel(const ModelOptions& o) {
  ProtocolModel m;
  m.id = ModelId::DriverKernel;
  m.name = model_name(m.id);
  m.wire = WireFormat::DriverKernel;
  m.symbols = {"READ", "WRITE", "READ-REPLY", "INTERRUPT", "GARBAGE"};
  m.channels = {"data", "irq"};
  m.monitored_channels = {kChData};  // the capture/observer sits on the data socket
  m.garbage_symbol = kDkGarbage;

  ProtocolAutomaton kernel("kernel");
  const int run = kernel.add_state("Run", /*accepting=*/true);
  const int must_reply = kernel.add_state("MustReply");
  const int quiesced = kernel.add_state("Quiesced", /*accepting=*/true, /*closed=*/true);
  kernel.recv(run, kDkWrite, kChData, run);
  kernel.recv(run, kDkRead, kChData, must_reply);
  if (o.push_outputs) kernel.send(run, kDkReadReply, kChData, run);
  if (o.interrupts) kernel.send(run, kDkInterrupt, kChIrq, run);
  kernel.send(must_reply, kDkReadReply, kChData, run);
  if (o.recovery) {
    kernel.recv(run, kDkGarbage, kChData, quiesced, /*recovery=*/true);
    kernel.internal(run, quiesced, "quiesce", /*recovery=*/true);
    kernel.internal(must_reply, quiesced, "quiesce", /*recovery=*/true);
  }
  m.endpoint_a = std::move(kernel);

  ProtocolAutomaton driver("driver");
  const int idle = driver.add_state("Idle");
  const int await_reply = driver.add_state("AwaitReply");
  const int done = driver.add_state("Done", /*accepting=*/true);
  const int degraded = driver.add_state("Degraded", /*accepting=*/true);
  driver.send(idle, kDkWrite, kChData, idle);
  if (o.sync_reads) driver.send(idle, kDkRead, kChData, await_reply);
  driver.recv(idle, kDkReadReply, kChData, idle);
  driver.recv(idle, kDkInterrupt, kChIrq, idle);
  driver.internal(idle, done, "finish");
  driver.recv(await_reply, kDkReadReply, kChData, idle);
  driver.recv(await_reply, kDkInterrupt, kChIrq, await_reply);
  if (o.recovery) {
    driver.recv(idle, kDkGarbage, kChData, degraded, /*recovery=*/true);
    driver.internal(idle, degraded, "degrade", /*recovery=*/true);
    driver.recv(await_reply, kDkGarbage, kChData, degraded, /*recovery=*/true);
    driver.internal(await_reply, degraded, "timeout", /*recovery=*/true);
  }
  for (int final : {done, degraded}) {
    // Terminal states keep draining late kernel traffic (pushes, interrupts)
    // without that counting as a violation.
    driver.recv(final, kDkReadReply, kChData, final);
    driver.recv(final, kDkGarbage, kChData, final);
    driver.recv(final, kDkInterrupt, kChIrq, final);
  }
  m.endpoint_b = std::move(driver);
  return m;
}

/// Shared GdbStub endpoint (identical for both RSP schemes): halted command
/// loop, deferred stop replies while running, 0x03 interrupt handling.
ProtocolAutomaton make_stub(const ModelOptions& o) {
  ProtocolAutomaton stub("stub");
  const int halted = stub.add_state("Halted", /*accepting=*/true);
  const int must_reply = stub.add_state("MustReply");
  const int running = stub.add_state("Running");
  const int must_stop = stub.add_state("MustStop");
  const int dead = stub.add_state("Dead", /*accepting=*/true, /*closed=*/true);
  stub.recv(halted, kRspQuery, kChRsp, must_reply);
  stub.recv(halted, kRspCont, kChRsp, running);
  stub.recv(halted, kRspRunQuantum, kChRsp, must_stop);
  stub.recv(halted, kRspKill, kChRsp, dead);
  stub.recv(halted, kRspIrqByte, kChRsp, halted);  // 0x03 while halted: ignored
  stub.send(must_reply, kRspReply, kChRsp, halted);
  stub.send(must_reply, kRspStopReply, kChRsp, halted);  // 's' replies with a stop
  stub.internal(running, must_stop, "hit");               // guest reaches a breakpoint
  stub.recv(running, kRspIrqByte, kChRsp, must_stop);
  stub.recv(running, kRspKill, kChRsp, dead);
  stub.send(must_stop, kRspStopReply, kChRsp, halted);
  if (o.recovery) {
    // A garbage frame draws a Nak; the peer resends, so tolerate in place.
    stub.recv(halted, kRspGarbage, kChRsp, halted, /*recovery=*/true);
    stub.recv(running, kRspGarbage, kChRsp, running, /*recovery=*/true);
    stub.internal(halted, dead, "die", /*recovery=*/true);
    stub.internal(must_reply, dead, "die", /*recovery=*/true);
    stub.internal(running, dead, "die", /*recovery=*/true);
    stub.internal(must_stop, dead, "die", /*recovery=*/true);
  }
  return stub;
}

/// Adds the terminal client states shared by both RSP clients: Killed (wire
/// torn down) and Failed (transport gave up; shutdown may still send k/0x03).
struct ClientTails {
  int killed;
  int failed;
};

ClientTails add_client_tails(ProtocolAutomaton& client) {
  ClientTails t{};
  t.killed = client.add_state("Killed", /*accepting=*/true, /*closed=*/true);
  t.failed = client.add_state("Failed", /*accepting=*/true);
  client.send(t.failed, kRspKill, kChRsp, t.killed);
  client.send(t.failed, kRspIrqByte, kChRsp, t.failed);
  for (int sym : {kRspReply, kRspStopReply, kRspGarbage}) {
    client.recv(t.failed, sym, kChRsp, t.failed);
  }
  return t;
}

ProtocolModel make_rsp_base(ModelId id) {
  ProtocolModel m;
  m.id = id;
  m.name = model_name(id);
  m.wire = WireFormat::Rsp;
  m.symbols = {"QUERY", "CONT",  "KILL",       "RUN-QUANTUM",
               "IRQ-BYTE", "REPLY", "STOP-REPLY", "GARBAGE"};
  m.channels = {"rsp"};
  m.monitored_channels = {kChRsp};
  m.garbage_symbol = kRspGarbage;
  return m;
}

/// GDB-Kernel (paper §3): the kernel-embedded GdbClient drives the stub via
/// breakpoint-synchronised continue cycles.
ProtocolModel make_gdb_kernel(const ModelOptions& o) {
  ProtocolModel m = make_rsp_base(ModelId::GdbKernel);

  ProtocolAutomaton client("client");
  const int halted = client.add_state("Halted", /*accepting=*/true);
  const int await_reply = client.add_state("AwaitReply");
  const int running = client.add_state("Running");
  const ClientTails tails = add_client_tails(client);
  client.send(halted, kRspQuery, kChRsp, await_reply);
  client.send(halted, kRspCont, kChRsp, running);
  client.send(halted, kRspKill, kChRsp, tails.killed);
  for (int sym : {kRspReply, kRspStopReply, kRspGarbage}) {
    client.recv(halted, sym, kChRsp, halted);  // stray duplicates: tolerated
  }
  client.recv(await_reply, kRspReply, kChRsp, halted);
  client.recv(await_reply, kRspStopReply, kChRsp, halted);
  client.recv(await_reply, kRspGarbage, kChRsp, await_reply);  // Nak'd, await resend
  client.send(await_reply, kRspKill, kChRsp, tails.killed);    // shutdown mid-transact
  client.send(running, kRspIrqByte, kChRsp, running);
  client.send(running, kRspKill, kChRsp, tails.killed);
  client.recv(running, kRspStopReply, kChRsp, halted);
  client.recv(running, kRspReply, kChRsp, running);
  client.recv(running, kRspGarbage, kChRsp, running);
  if (o.recovery) {
    client.send(await_reply, kRspQuery, kChRsp, await_reply, /*recovery=*/true);  // resend
    client.internal(await_reply, tails.failed, "timeout", /*recovery=*/true);
    client.internal(running, tails.failed, "giveup", /*recovery=*/true);
    client.internal(halted, tails.failed, "fail", /*recovery=*/true);
  }
  m.endpoint_a = std::move(client);
  m.endpoint_b = make_stub(o);
  return m;
}

/// GDB-Wrapper: the lock-step wrapper alternates qnisc.run quanta (or single
/// steps) with breakpoint servicing.
ProtocolModel make_gdb_wrapper(const ModelOptions& o) {
  ProtocolModel m = make_rsp_base(ModelId::GdbWrapper);

  ProtocolAutomaton wrapper("wrapper");
  const int cycle = wrapper.add_state("Cycle", /*accepting=*/true);
  const int await_reply = wrapper.add_state("AwaitReply");
  const int await_stop = wrapper.add_state("AwaitStop");
  const int done = wrapper.add_state("Done", /*accepting=*/true);
  const ClientTails tails = add_client_tails(wrapper);
  wrapper.send(cycle, kRspQuery, kChRsp, await_reply);
  wrapper.send(cycle, kRspRunQuantum, kChRsp, await_stop);
  wrapper.send(cycle, kRspKill, kChRsp, tails.killed);
  wrapper.internal(cycle, done, "finish");
  for (int sym : {kRspReply, kRspStopReply, kRspGarbage}) {
    wrapper.recv(cycle, sym, kChRsp, cycle);  // stray duplicates: tolerated
  }
  wrapper.recv(await_reply, kRspReply, kChRsp, cycle);
  wrapper.recv(await_reply, kRspStopReply, kChRsp, cycle);  // 's' step reply
  wrapper.recv(await_reply, kRspGarbage, kChRsp, await_reply);
  wrapper.send(await_reply, kRspKill, kChRsp, tails.killed);
  wrapper.recv(await_stop, kRspStopReply, kChRsp, cycle);
  wrapper.recv(await_stop, kRspReply, kChRsp, await_stop);  // stray duplicate
  wrapper.recv(await_stop, kRspGarbage, kChRsp, await_stop);
  wrapper.send(await_stop, kRspKill, kChRsp, tails.killed);
  wrapper.send(done, kRspKill, kChRsp, tails.killed);
  for (int sym : {kRspReply, kRspStopReply, kRspGarbage}) {
    wrapper.recv(done, sym, kChRsp, done);
  }
  if (o.recovery) {
    wrapper.send(await_reply, kRspQuery, kChRsp, await_reply, /*recovery=*/true);
    wrapper.internal(await_reply, tails.failed, "timeout", /*recovery=*/true);
    wrapper.send(await_stop, kRspRunQuantum, kChRsp, await_stop, /*recovery=*/true);
    wrapper.internal(await_stop, tails.failed, "timeout", /*recovery=*/true);
    wrapper.internal(cycle, tails.failed, "fail", /*recovery=*/true);
  }
  m.endpoint_a = std::move(wrapper);
  m.endpoint_b = make_stub(o);
  return m;
}

/// Supervisor <-> cosim_issworker recovery wire (DESIGN.md §12). The model
/// unrolls a minimal session of two durable effect units — unit 0 is a
/// DevWrite whose ack's irq high-water mark makes the worker drain one Irq
/// before retiring the ecall, unit 1 a synchronous DevRead — because seq
/// dedup is then expressible in pure automaton states: the supervisor's
/// Serve<N> state encodes how many units it durably applied, so a replayed
/// request is re-acked from the reply log (no apply_effect tag) while a fresh
/// one applies. The optional checkpoint between the units pins the worker's
/// respawn point via the ckpt tag on the supervisor's Ckpt consumption.
/// Endpoint A is the supervisor (the tapped side), endpoint B the worker.
ProtocolModel make_worker(const ModelOptions& o) {
  ProtocolModel m;
  m.id = ModelId::Worker;
  m.name = model_name(m.id);
  m.wire = WireFormat::Worker;
  m.symbols = {"HELLO",     "START",          "RESUME",   "DEV-WRITE",  "WRITE-ACK",
               "DEV-READ",  "READ-REPLY",     "IRQ",      "CKPT",       "DONE",
               "CLOCK-SYNC", "CLOCK-SYNC-ACK", "PULL-OBS", "OBS-REPORT", "GARBAGE"};
  m.channels = {"data", "irq"};
  m.monitored_channels = {kChData};  // capture/observer sits on the data socket
  m.garbage_symbol = kWkGarbage;
  m.reset_event = "respawn";
  m.reset_state = 0;  // the spawn handshake restarts at WaitHello

  ProtocolAutomaton sup("supervisor");
  const int wait_hello = sup.add_state("WaitHello");
  const int send_cfg = sup.add_state("SendCfg");
  int a_sync = -1;
  int a_await_sync = -1;
  if (o.sideband) {
    a_sync = sup.add_state("SyncClock");
    a_await_sync = sup.add_state("AwaitSyncAck");
  }
  const int serve0 = sup.add_state("Serve0", /*accepting=*/true);
  const int raise_irq = sup.add_state("RaiseIrq");
  const int ack_write = sup.add_state("AckWrite");
  const int serve1 = sup.add_state("Serve1", /*accepting=*/true);
  const int reply_read = sup.add_state("ReplyRead");
  const int serve2 = sup.add_state("Serve2", /*accepting=*/true);
  const int a_done = sup.add_state("SessionDone", /*accepting=*/true);
  const int a_abort = o.recovery ? sup.add_state("Aborted", /*accepting=*/true, /*closed=*/true)
                                 : -1;

  sup.recv(wait_hello, kWkHello, kChData, send_cfg);
  const int post_cfg = o.sideband ? a_sync : serve0;
  sup.send(send_cfg, kWkStart, kChData, post_cfg);
  sup.send(send_cfg, kWkResume, kChData, post_cfg);
  if (o.sideband) {
    // Per-spawn clock sync: strictly ordered before guest traffic, both
    // peers know obs is on from the config, so no skip branch exists.
    sup.send(a_sync, kWkClockSync, kChData, a_await_sync);
    sup.recv(a_await_sync, kWkClockSyncAck, kChData, serve0);
  }

  // Fresh unit 0: apply the write, raise its interrupt (before the ack, as
  // handle_dev_write does), then ack with the irq high-water mark.
  sup.recv(serve0, kWkDevWrite, kChData, raise_irq).apply_effect = 0;
  sup.send(raise_irq, kWkIrq, kChIrq, ack_write);
  sup.send(ack_write, kWkWriteAck, kChData, serve1);
  // Fresh unit 1: the synchronous read.
  sup.recv(serve1, kWkDevRead, kChData, reply_read).apply_effect = 1;
  sup.send(reply_read, kWkReadReply, kChData, serve2);

  if (o.worker_reply_log && !o.worker_eager_prune) {
    // Replayed requests after a recovery are answered from the reply log
    // with their historical irq marks — acknowledged again, applied never.
    const int re_ack1 = sup.add_state("ReAck@1");
    const int re_ack2 = sup.add_state("ReAck@2");
    const int re_reply = sup.add_state("ReReply@2");
    sup.recv(serve1, kWkDevWrite, kChData, re_ack1);
    sup.send(re_ack1, kWkWriteAck, kChData, serve1);
    sup.recv(serve2, kWkDevWrite, kChData, re_ack2);
    sup.send(re_ack2, kWkWriteAck, kChData, serve2);
    sup.recv(serve2, kWkDevRead, kChData, re_reply);
    sup.send(re_reply, kWkReadReply, kChData, serve2);
  } else if (!o.worker_reply_log) {
    // NL413 negative control: with seq dedup gone a replayed request is
    // indistinguishable from a fresh one and re-applies the device effect.
    sup.recv(serve1, kWkDevWrite, kChData, raise_irq).apply_effect = 0;
    sup.recv(serve2, kWkDevWrite, kChData, raise_irq).apply_effect = 0;
    sup.recv(serve2, kWkDevRead, kChData, reply_read).apply_effect = 1;
  }
  // NL414 negative control (worker_eager_prune): the log entry died at ack
  // time, so Serve1/Serve2 simply have no transition for a replayed request.

  sup.recv(serve2, kWkDone, kChData, a_done);

  ProtocolAutomaton worker("worker");
  const int w_init = worker.add_state("Init");
  const int w_wait_cfg = worker.add_state("WaitConfig");
  int w_sync = -1;
  int w_sync_ack = -1;
  if (o.sideband) {
    w_sync = worker.add_state("SyncClock");
    w_sync_ack = worker.add_state("SyncAck");
  }
  const int w_run1 = worker.add_state("Run1");
  const int w_await_ack = worker.add_state("AwaitAck");
  const int w_drain_irq = worker.add_state("DrainIrq");
  const int w_ckpt = worker.add_state("CkptBoundary");
  const int w_run2 = worker.add_state("Run2");
  const int w_await_reply = worker.add_state("AwaitReply");
  const int w_done = worker.add_state("Done");
  const int w_exit = worker.add_state("Exited", /*accepting=*/true, /*closed=*/true);
  worker.set_awaiting(w_await_ack, 0);
  worker.set_awaiting(w_await_reply, 1);

  worker.send(w_init, kWkHello, kChData, w_wait_cfg);
  const int w_post_cfg = o.sideband ? w_sync : w_run1;
  worker.recv(w_wait_cfg, kWkStart, kChData, w_post_cfg);
  worker.recv(w_wait_cfg, kWkResume, kChData, w_post_cfg);
  if (o.sideband) {
    worker.recv(w_sync, kWkClockSync, kChData, w_sync_ack);
    worker.send(w_sync_ack, kWkClockSyncAck, kChData, w_run1);
  }
  worker.send(w_run1, kWkDevWrite, kChData, w_await_ack);
  worker.recv(w_await_ack, kWkWriteAck, kChData, w_drain_irq);
  // The ack's irq high-water mark forces the drain before the ecall retires:
  // interrupt delivery is deterministic in the instruction stream.
  worker.recv(w_drain_irq, kWkIrq, kChIrq, w_ckpt).retire_effect = 0;
  // The ckpt_every cadence may or may not hit the boundary between the units.
  worker.send(w_ckpt, kWkCkpt, kChData, w_run2);
  worker.internal(w_ckpt, w_run2, "skip-ckpt");
  worker.send(w_run2, kWkDevRead, kChData, w_await_reply);
  worker.recv(w_await_reply, kWkReadReply, kChData, w_done).retire_effect = 1;
  worker.send(w_done, kWkDone, kChData, w_exit);

  // The checkpoint between the units: consuming it (seq > applied_seq, or a
  // deterministic replay of the same bytes) pins the worker's respawn point
  // to Run2 with unit 0 retired. A replayed Ckpt can reach Serve2 too (a
  // from-reset replay that checkpoints this time), hence both self-loops.
  for (int serve : {serve1, serve2}) {
    ProtoTransition& ckpt = sup.recv(serve, kWkCkpt, kChData, serve);
    ckpt.ckpt_state = w_run2;
    ckpt.ckpt_mask = 0x1;
  }

  // Live-monitor tolerance at Serve0: a post-Resume epoch of a *real*
  // session can open with a replayed DEV-READ, a checkpoint, or DONE before
  // the monitor saw any write — the worker resumed carrying effects that the
  // two-unit unrolling attributes to earlier epochs. Exploration never
  // reaches these transitions (a crash restores B at or before A's durable
  // progress, so A:Serve0 implies B:Run1 with nothing applied), hence the
  // crash-fault proofs are unaffected.
  if (o.worker_reply_log && !o.worker_eager_prune) {
    const int re_reply0 = sup.add_state("ReReply@0");
    sup.recv(serve0, kWkDevRead, kChData, re_reply0);
    sup.send(re_reply0, kWkReadReply, kChData, serve0);
  }
  {
    ProtoTransition& ckpt0 = sup.recv(serve0, kWkCkpt, kChData, serve0);
    ckpt0.ckpt_state = w_run1;
    ckpt0.ckpt_mask = 0;
  }
  sup.recv(serve0, kWkDone, kChData, a_done);

  // Seq-0 side-band is legal in every non-closed state: the supervisor's
  // handle() tolerates ClockSyncAck/ObsReport anywhere, the worker drains
  // ClockSync/PullObs inline wherever it blocks.
  if (o.sideband) {
    for (std::size_t s = 0; s < sup.states().size(); ++s) {
      const int id = static_cast<int>(s);
      if (sup.state(id).closed) continue;
      // AwaitSyncAck already consumes the ack via its real transition; a
      // tolerance self-loop there would let the walk eat it and stall.
      if (id != a_await_sync) sup.recv(id, kWkClockSyncAck, kChData, id);
      sup.recv(id, kWkObsReport, kChData, id);
    }
    for (int serve : {serve0, serve1, serve2}) {
      sup.send(serve, kWkPullObs, kChData, serve);  // fire-and-forget obs pull
    }
    for (std::size_t s = 0; s < worker.states().size(); ++s) {
      const int id = static_cast<int>(s);
      if (worker.state(id).closed) continue;
      if (id != w_sync) worker.recv(id, kWkClockSync, kChData, id);
      worker.recv(id, kWkPullObs, kChData, id);
    }
    worker.send(w_done, kWkObsReport, kChData, w_done);  // final pre-Done report
  }

  if (o.recovery) {
    // Garbage on the wire aborts the session from the supervisor's side (a
    // decode error recovers by respawn; modelled as an accepted teardown).
    for (std::size_t s = 0; s < sup.states().size(); ++s) {
      if (sup.state(static_cast<int>(s)).closed) continue;
      sup.recv(static_cast<int>(s), kWkGarbage, kChData, a_abort, /*recovery=*/true);
    }
    const int w_dead = worker.add_state("Dead", /*accepting=*/true, /*closed=*/true);
    for (std::size_t s = 0; s < worker.states().size(); ++s) {
      if (worker.state(static_cast<int>(s)).closed) continue;
      worker.recv(static_cast<int>(s), kWkGarbage, kChData, w_dead, /*recovery=*/true);
    }
  }

  m.crash.enabled = true;
  m.crash.units = 2;
  m.crash.b_restart = w_run1;
  m.crash.a_serve = serve0;
  m.crash.a_handshake_states = {wait_hello, send_cfg};
  if (o.sideband) {
    m.crash.a_handshake_states.push_back(a_sync);
    m.crash.a_handshake_states.push_back(a_await_sync);
  }
  m.crash.a_stable_states = {serve0, serve1, serve2, a_done};
  m.crash.irq_channel = kChIrq;
  m.crash.unit_irq_symbols = {kWkIrq, -1};

  m.endpoint_a = std::move(sup);
  m.endpoint_b = std::move(worker);
  return m;
}

/// The Driver-Kernel irq socket (ROADMAP's "unmonitored epsilon channel"):
/// delivery plus the ISR-acknowledge cycle. Endpoint A is the InterruptPump
/// (the tapped receiving end — attach the live monitor with
/// flip_direction=true when the tap sits on the raising side), endpoint B
/// the kernel extension raising interrupts. By default the symbol table
/// matches the Driver-Kernel wire format so the decoder's MsgType cast
/// stays valid; data-plane messages on the irq socket are NL401. With
/// ModelOptions::worker_wire the same automaton decodes Worker frames
/// instead — the live-monitor flavor for the supervisor's irq socket,
/// where a respawn resets the decoders and the irq-log re-send on Resume
/// is accepted as fresh Irq deliveries.
ProtocolModel make_driver_irq(const ModelOptions& o) {
  ProtocolModel m;
  m.id = ModelId::DriverIrq;
  m.name = model_name(m.id);
  int irq_sym = kDkInterrupt;
  int garbage_sym = kDkGarbage;
  if (o.worker_wire) {
    m.wire = WireFormat::Worker;
    m.symbols = {"HELLO",     "START",          "RESUME",   "DEV-WRITE",  "WRITE-ACK",
                 "DEV-READ",  "READ-REPLY",     "IRQ",      "CKPT",       "DONE",
                 "CLOCK-SYNC", "CLOCK-SYNC-ACK", "PULL-OBS", "OBS-REPORT", "GARBAGE"};
    m.reset_event = "respawn";
    m.reset_state = 0;  // the replacement socket starts idle
    irq_sym = kWkIrq;
    garbage_sym = kWkGarbage;
  } else {
    m.wire = WireFormat::DriverKernel;
    m.symbols = {"READ", "WRITE", "READ-REPLY", "INTERRUPT", "GARBAGE"};
  }
  m.channels = {"irq"};
  m.monitored_channels = {0};
  m.garbage_symbol = garbage_sym;

  ProtocolAutomaton pump("pump");
  const int idle = pump.add_state("Idle", /*accepting=*/true);
  const int isr = pump.add_state("Isr");
  pump.recv(idle, irq_sym, /*channel=*/0, isr);
  pump.internal(isr, idle, "ack");  // kernel_.raise_irq completed
  if (o.recovery) {
    // A decode error makes the pump thread exit; its wire is then dead.
    const int dead = pump.add_state("PumpDead", /*accepting=*/true, /*closed=*/true);
    pump.recv(idle, garbage_sym, /*channel=*/0, dead, /*recovery=*/true);
    pump.recv(isr, garbage_sym, /*channel=*/0, dead, /*recovery=*/true);
  }
  m.endpoint_a = std::move(pump);

  ProtocolAutomaton kernel("kernel");
  const int run = kernel.add_state("Run", /*accepting=*/true);
  kernel.send(run, irq_sym, /*channel=*/0, run);
  if (o.recovery) {
    const int quiesced = kernel.add_state("Quiesced", /*accepting=*/true, /*closed=*/true);
    kernel.internal(run, quiesced, "quiesce", /*recovery=*/true);
  }
  m.endpoint_b = std::move(kernel);
  return m;
}

}  // namespace

ProtocolModel make_model(ModelId id, const ModelOptions& options) {
  switch (id) {
    case ModelId::DriverKernel: return make_driver_kernel(options);
    case ModelId::GdbKernel: return make_gdb_kernel(options);
    case ModelId::GdbWrapper: return make_gdb_wrapper(options);
    case ModelId::Worker: return make_worker(options);
    case ModelId::DriverIrq: return make_driver_irq(options);
  }
  return make_driver_kernel(options);
}

// ---------------------------------------------------------------------------
// Wire classification

namespace {

std::string printable_prefix(std::string_view payload, std::size_t max) {
  std::string out;
  for (std::size_t i = 0; i < payload.size() && i < max; ++i) {
    const unsigned char c = static_cast<unsigned char>(payload[i]);
    out += std::isprint(c) != 0 ? static_cast<char>(c) : '.';
  }
  if (payload.size() > max) out += "...";
  return out;
}

WireSymbol classify_rsp(const std::string& payload, bool toward_target) {
  WireSymbol sym;
  sym.detail = "$" + printable_prefix(payload, 24) + "#";
  if (toward_target) {
    if (!payload.empty() && payload[0] == 'c') {
      sym.symbol = kRspCont;
    } else if (!payload.empty() && payload[0] == 'k') {
      sym.symbol = kRspKill;
    } else if (payload.rfind("qnisc.run:", 0) == 0) {
      sym.symbol = kRspRunQuantum;
    } else {
      sym.symbol = kRspQuery;  // g/p/P/m/M/Z/z/H/?/s/D/...
    }
  } else {
    sym.symbol = !payload.empty() && (payload[0] == 'S' || payload[0] == 'T') ? kRspStopReply
                                                                              : kRspReply;
  }
  return sym;
}

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

namespace {

int worker_symbol_of(cosim::WorkerOp op) noexcept {
  switch (op) {
    case cosim::WorkerOp::Hello: return kWkHello;
    case cosim::WorkerOp::Start: return kWkStart;
    case cosim::WorkerOp::Resume: return kWkResume;
    case cosim::WorkerOp::DevWrite: return kWkDevWrite;
    case cosim::WorkerOp::WriteAck: return kWkWriteAck;
    case cosim::WorkerOp::DevRead: return kWkDevRead;
    case cosim::WorkerOp::ReadReply: return kWkReadReply;
    case cosim::WorkerOp::Irq: return kWkIrq;
    case cosim::WorkerOp::Ckpt: return kWkCkpt;
    case cosim::WorkerOp::Done: return kWkDone;
    case cosim::WorkerOp::ClockSync: return kWkClockSync;
    case cosim::WorkerOp::ClockSyncAck: return kWkClockSyncAck;
    case cosim::WorkerOp::PullObs: return kWkPullObs;
    case cosim::WorkerOp::ObsReport: return kWkObsReport;
  }
  return -1;
}

}  // namespace

StreamDecoder::StreamDecoder(WireFormat format, bool toward_target)
    : format_(format), toward_target_(toward_target) {}

void StreamDecoder::reset() {
  wedged_ = false;
  buffer_.clear();
  reader_ = rsp::PacketReader{};
}

std::size_t StreamDecoder::pending() const noexcept {
  return format_ == WireFormat::Rsp ? reader_.pending_bytes() : buffer_.size();
}

void StreamDecoder::feed(std::span<const std::uint8_t> bytes, std::vector<WireSymbol>& out) {
  if (wedged_) return;
  if (format_ == WireFormat::Rsp) {
    reader_.feed(bytes);
    while (std::optional<rsp::RspEvent> event = reader_.next()) {
      switch (event->kind) {
        case rsp::RspEventKind::Ack:
        case rsp::RspEventKind::Nak:
          break;  // advisory framing traffic, not part of the alphabet
        case rsp::RspEventKind::Interrupt:
          out.push_back(WireSymbol{kRspIrqByte, false, "0x03 interrupt byte"});
          break;
        case rsp::RspEventKind::Packet:
          out.push_back(classify_rsp(event->payload, toward_target_));
          break;
      }
    }
    return;
  }

  if (format_ == WireFormat::Worker) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
    while (buffer_.size() >= 4) {
      const std::uint32_t len = read_le32(buffer_.data());
      if (len < 1 + 8 || len > cosim::kMaxWorkerFrame) {
        wedged_ = true;
        out.push_back(WireSymbol{kWkGarbage, true,
                                 "worker frame length " + std::to_string(len) +
                                     " outside [9, " + std::to_string(cosim::kMaxWorkerFrame) +
                                     "] (stream corrupt?)"});
        return;
      }
      if (buffer_.size() < 4u + len) break;
      const auto op = static_cast<cosim::WorkerOp>(buffer_[4]);
      std::uint64_t seq = 0;
      for (int i = 7; i >= 0; --i) seq = (seq << 8) | buffer_[5 + static_cast<std::size_t>(i)];
      std::size_t payload_len = len - (1 + 8);
      // Strip the optional 12-byte FTID correlation trailer: only
      // fixed-payload ops carry it, and only when length + closing magic
      // both line up (cosim::recv_frame applies the same rule).
      std::uint64_t trace_id = 0;
      const std::size_t fixed = cosim::worker_op_fixed_payload(op);
      if (fixed != 0 && payload_len == fixed + 12) {
        const std::uint8_t* tail = buffer_.data() + 4 + 1 + 8 + fixed;
        if (read_le32(tail + 8) == cosim::kFrameTraceMagic) {
          for (int i = 7; i >= 0; --i) trace_id = (trace_id << 8) | tail[i];
          payload_len = fixed;
        }
      }
      const int symbol = worker_symbol_of(op);
      if (symbol >= 0) {
        WireSymbol sym;
        sym.symbol = symbol;
        sym.detail = std::string(cosim::worker_op_name(op)) + "(seq " + std::to_string(seq) +
                     ", " + std::to_string(payload_len) + " payload byte(s)" +
                     (trace_id != 0 ? ", traced" : "") + ")";
        out.push_back(std::move(sym));
      } else {
        // Framing stays intact (plausible length), so classify the frame as
        // garbage and keep decoding subsequent ones.
        out.push_back(WireSymbol{
            kWkGarbage, true,
            "unknown worker op 0x" + [](unsigned v) {
              const char* hex = "0123456789abcdef";
              return std::string{hex[(v >> 4) & 0xF], hex[v & 0xF]};
            }(buffer_[4])});
      }
      buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + static_cast<std::ptrdiff_t>(len));
    }
    return;
  }

  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  while (buffer_.size() >= 4) {
    const std::uint32_t size = read_le32(buffer_.data());
    if (size > ipc::kMaxMessageBody) {
      // An implausible size field means the stream desynchronized; there is
      // no way to find the next frame boundary.
      wedged_ = true;
      out.push_back(WireSymbol{kDkGarbage, true,
                               "frame size " + std::to_string(size) + " exceeds the " +
                                   std::to_string(ipc::kMaxMessageBody) + "-byte limit"});
      return;
    }
    if (buffer_.size() < 4u + size) break;
    const std::span<const std::uint8_t> body(buffer_.data() + 4, size);
    util::Result<ipc::DriverMessage> msg = ipc::decode_message_body(body);
    if (msg.ok()) {
      WireSymbol sym;
      sym.symbol = static_cast<int>(msg.value().type);
      sym.detail = std::string(ipc::msg_type_name(msg.value().type)) + "(" +
                   std::to_string(msg.value().items.size()) + " item(s)" +
                   (msg.value().items.empty() ? "" : ", " + msg.value().items.front().port) + ")";
      out.push_back(std::move(sym));
    } else {
      // Framing stays intact (the size field was plausible), so classify the
      // body as garbage and keep decoding subsequent frames.
      out.push_back(WireSymbol{kDkGarbage, true, msg.error()});
    }
    buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + size);
  }
}

// ---------------------------------------------------------------------------
// Conformance monitor

ConformanceMonitor::ConformanceMonitor(ProtocolModel model, DiagEngine& diags,
                                       MonitorOptions options)
    : model_(std::move(model)),
      diags_(diags),
      options_(std::move(options)),
      tx_(model_.wire, /*toward_target=*/true),
      rx_(model_.wire, /*toward_target=*/false) {
  current_.insert(model_.endpoint_a.initial());
}

std::set<int> ConformanceMonitor::closure(std::set<int> states, bool include_recovery) const {
  std::vector<int> worklist(states.begin(), states.end());
  while (!worklist.empty()) {
    const int s = worklist.back();
    worklist.pop_back();
    for (const ProtoTransition& t : model_.endpoint_a.from(s)) {
      if (t.recovery && !include_recovery) continue;
      const bool epsilon = t.kind == ActionKind::Internal || !model_.monitored(t.channel);
      if (epsilon && states.insert(t.to).second) worklist.push_back(t.to);
    }
  }
  return states;
}

namespace {

std::string state_names(const ProtocolAutomaton& automaton, const std::set<int>& states) {
  std::string out;
  for (int s : states) {
    if (!out.empty()) out += "|";
    out += automaton.state(s).name;
  }
  return out.empty() ? "<none>" : out;
}

}  // namespace

void ConformanceMonitor::step(ActionKind kind, const WireSymbol& sym, ipc::CaptureDir dir) {
  ++messages_seen_;
  const char* dir_name = dir == ipc::CaptureDir::Tx ? "tx" : "rx";
  const SourceLoc loc{options_.origin, static_cast<int>(messages_seen_), 0};
  const std::set<int> reach = closure(current_, /*include_recovery=*/true);

  if (sym.malformed) {
    ++violations_;
    diags_.report(Severity::Error, "NL402",
                  std::string("undecodable wire data (") + dir_name + "): " + sym.detail, loc);
  }

  std::set<int> next;
  for (int s : reach) {
    for (const ProtoTransition& t : model_.endpoint_a.from(s)) {
      if (t.kind == kind && t.symbol == sym.symbol && model_.monitored(t.channel)) {
        next.insert(t.to);
      }
    }
  }
  if (next.empty()) {
    const bool all_closed =
        std::all_of(reach.begin(), reach.end(),
                    [&](int s) { return model_.endpoint_a.state(s).closed; });
    if (all_closed) {
      ++violations_;
      diags_.report(Severity::Error, "NL403",
                    "traffic after the endpoint closed its wire (state " +
                        state_names(model_.endpoint_a, reach) + "): " +
                        model_.symbol_name(sym.symbol) + " " + dir_name,
                    loc);
    } else if (!sym.malformed) {
      ++violations_;
      diags_.report(Severity::Error, "NL401",
                    "unexpected " + model_.symbol_name(sym.symbol) + " (" + dir_name +
                        ") in state " + state_names(model_.endpoint_a, reach) +
                        (sym.detail.empty() ? "" : ": " + sym.detail),
                    loc);
    }
    // Resynchronize: any state is again possible, so one violation does not
    // cascade into a report for every subsequent message.
    for (std::size_t s = 0; s < model_.endpoint_a.states().size(); ++s) {
      next.insert(static_cast<int>(s));
    }
  }
  current_ = std::move(next);
}

void ConformanceMonitor::on_transfer(ipc::CaptureDir dir, std::span<const std::uint8_t> bytes) {
  StreamDecoder& decoder = dir == ipc::CaptureDir::Tx ? tx_ : rx_;
  std::vector<WireSymbol> symbols;
  decoder.feed(bytes, symbols);
  for (const WireSymbol& sym : symbols) {
    step(dir == ipc::CaptureDir::Tx ? ActionKind::Send : ActionKind::Recv, sym, dir);
  }
}

void ConformanceMonitor::on_event(std::string_view tag) {
  if (!model_.reset_event.empty() && tag == model_.reset_event && model_.reset_state >= 0) {
    // Kill + respawn cycle: the old socket may die mid-frame (that is what a
    // SIGKILL does, not a protocol violation) and the replacement socket
    // starts on a frame boundary with a fresh handshake.
    tx_.reset();
    rx_.reset();
    current_.clear();
    current_.insert(model_.reset_state);
    return;
  }
  const std::set<int> reach = closure(current_, /*include_recovery=*/true);
  std::set<int> next;
  for (int s : reach) {
    for (const ProtoTransition& t : model_.endpoint_a.from(s)) {
      if (t.kind == ActionKind::Internal && t.label == tag) next.insert(t.to);
    }
  }
  if (next.empty()) {
    diags_.report(Severity::Note, "NL401",
                  "internal event '" + std::string(tag) + "' has no transition from state " +
                      state_names(model_.endpoint_a, reach),
                  SourceLoc{options_.origin, static_cast<int>(messages_seen_), 0});
    return;
  }
  current_ = std::move(next);
}

void ConformanceMonitor::finish() {
  const SourceLoc loc{options_.origin, static_cast<int>(messages_seen_), 0};
  const auto tail = [&](const StreamDecoder& decoder, const char* dir_name) {
    if (decoder.wedged()) return;  // already reported NL402 when it wedged
    if (decoder.pending() > 0) {
      ++violations_;
      diags_.report(Severity::Error, "NL402",
                    "stream ends mid-frame (" + std::to_string(decoder.pending()) +
                        " byte(s) buffered, " + dir_name + ")",
                    loc);
    }
  };
  tail(tx_, "tx");
  tail(rx_, "rx");
  if (options_.end_check) {
    const std::set<int> reach = closure(current_, /*include_recovery=*/false);
    const bool quiescent = std::any_of(reach.begin(), reach.end(), [&](int s) {
      return model_.endpoint_a.state(s).accepting;
    });
    if (!quiescent) {
      ++violations_;
      diags_.report(Severity::Warning, "NL404",
                    "stream ended in non-quiescent state " +
                        state_names(model_.endpoint_a, reach),
                    loc);
    }
  }
}

bool ConformanceMonitor::state_possible(std::string_view name) const {
  const int id = model_.endpoint_a.find_state(name);
  if (id < 0) return false;
  return closure(current_, /*include_recovery=*/true).count(id) > 0;
}

// ---------------------------------------------------------------------------
// Live monitor

LiveConformanceMonitor::LiveConformanceMonitor(ProtocolModel model, std::string origin,
                                               bool flip_direction)
    : monitor_(std::move(model), diags_, MonitorOptions{std::move(origin), true}),
      flip_direction_(flip_direction) {}

void LiveConformanceMonitor::on_wire(ipc::CaptureDir dir, std::span<const std::uint8_t> bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  if (flip_direction_) {
    dir = dir == ipc::CaptureDir::Tx ? ipc::CaptureDir::Rx : ipc::CaptureDir::Tx;
  }
  monitor_.on_transfer(dir, bytes);
}

void LiveConformanceMonitor::on_wire_event(std::string_view tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  monitor_.on_event(tag);
}

void LiveConformanceMonitor::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  monitor_.finish();
  finished_ = true;
}

std::size_t LiveConformanceMonitor::messages_seen() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return monitor_.messages_seen();
}

// ---------------------------------------------------------------------------
// Capture replay

std::size_t check_capture(std::span<const std::uint8_t> bytes, const ProtocolModel& model,
                          DiagEngine& diags, const std::string& origin) {
  ConformanceMonitor monitor(model, diags, MonitorOptions{origin, true});
  std::size_t replayed = 0;
  std::size_t offset = 0;
  int frame = 0;
  while (offset < bytes.size()) {
    ++frame;
    const SourceLoc loc{origin, frame, 0};
    if (bytes.size() - offset < 4) {
      diags.report(Severity::Error, "NL402",
                   "capture envelope truncated at offset " + std::to_string(offset), loc);
      break;
    }
    const std::uint32_t size = read_le32(bytes.data() + offset);
    if (size > ipc::kMaxMessageBody || offset + 4 + size > bytes.size()) {
      diags.report(Severity::Error, "NL402",
                   "capture envelope frame " + std::to_string(frame) +
                       " has implausible size " + std::to_string(size),
                   loc);
      break;
    }
    util::Result<ipc::DriverMessage> msg =
        ipc::decode_message_body(bytes.subspan(offset + 4, size));
    offset += 4 + size;
    if (!msg.ok()) {
      diags.report(Severity::Error, "NL402",
                   "capture envelope frame " + std::to_string(frame) + ": " + msg.error(), loc);
      break;
    }
    for (const ipc::MsgItem& item : msg.value().items) {
      // WireCapture::dump pseudo-ports: "<label>.tx#<seq>" / "<label>.rx#<seq>".
      const std::size_t tx = item.port.rfind(".tx#");
      const std::size_t rx = item.port.rfind(".rx#");
      if (tx == std::string::npos && rx == std::string::npos) {
        diags.report(Severity::Note, "NL402",
                     "frame " + std::to_string(frame) + " port '" + item.port +
                         "' is not a capture pseudo-port; skipped",
                     loc);
        continue;
      }
      monitor.on_transfer(tx != std::string::npos ? ipc::CaptureDir::Tx : ipc::CaptureDir::Rx,
                          item.data);
      ++replayed;
    }
  }
  monitor.finish();
  return replayed;
}

DrainResult drain_to_frame_boundary(ipc::Channel& channel, WireFormat format, bool toward_target,
                                    int timeout_ms) {
  DrainResult out;
  StreamDecoder decoder(format, toward_target);
  std::uint8_t buf[4096];
  for (;;) {
    // On a boundary only sweep what is already pending (poll); mid-frame,
    // wait up to the timeout for the sender to finish its frame.
    const bool mid_frame = decoder.pending() > 0;
    if (!channel.readable(mid_frame ? timeout_ms : 0)) break;
    const std::size_t n = channel.recv_some(buf);
    if (n == 0) break;
    decoder.feed({buf, n}, out.symbols);
    out.bytes.insert(out.bytes.end(), buf, buf + n);
    if (decoder.wedged()) break;
  }
  out.clean = decoder.pending() == 0 && !decoder.wedged();
  return out;
}

}  // namespace nisc::analysis
