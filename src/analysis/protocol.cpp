#include "analysis/protocol.hpp"

#include <algorithm>
#include <cctype>

#include "ipc/message.hpp"

namespace nisc::analysis {

namespace {

// Driver-Kernel model symbol ids match ipc::MsgType so the decoder is a cast.
constexpr int kDkRead = 0;
constexpr int kDkWrite = 1;
constexpr int kDkReadReply = 2;
constexpr int kDkInterrupt = 3;
constexpr int kDkGarbage = 4;
constexpr int kChData = 0;
constexpr int kChIrq = 1;

// RSP model symbol ids (shared by gdb-kernel and gdb-wrapper).
constexpr int kRspQuery = 0;
constexpr int kRspCont = 1;
constexpr int kRspKill = 2;
constexpr int kRspRunQuantum = 3;
constexpr int kRspIrqByte = 4;
constexpr int kRspReply = 5;
constexpr int kRspStopReply = 6;
constexpr int kRspGarbage = 7;
constexpr int kChRsp = 0;

}  // namespace

// ---------------------------------------------------------------------------
// Automaton structure

int ProtocolAutomaton::add_state(std::string name, bool accepting, bool closed) {
  states_.push_back(ProtoState{std::move(name), accepting, closed});
  by_state_.emplace_back();
  return static_cast<int>(states_.size()) - 1;
}

void ProtocolAutomaton::send(int from, int symbol, int channel, int to, bool recovery) {
  by_state_[static_cast<std::size_t>(from)].push_back(
      ProtoTransition{ActionKind::Send, symbol, channel, to, recovery, {}});
}

void ProtocolAutomaton::recv(int from, int symbol, int channel, int to, bool recovery) {
  by_state_[static_cast<std::size_t>(from)].push_back(
      ProtoTransition{ActionKind::Recv, symbol, channel, to, recovery, {}});
}

void ProtocolAutomaton::internal(int from, int to, std::string label, bool recovery) {
  by_state_[static_cast<std::size_t>(from)].push_back(
      ProtoTransition{ActionKind::Internal, -1, -1, to, recovery, std::move(label)});
}

int ProtocolAutomaton::find_state(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Models

const char* model_name(ModelId id) noexcept {
  switch (id) {
    case ModelId::DriverKernel: return "driver-kernel";
    case ModelId::GdbKernel: return "gdb-kernel";
    case ModelId::GdbWrapper: return "gdb-wrapper";
  }
  return "?";
}

std::optional<ModelId> model_from_name(std::string_view name) noexcept {
  if (name == "driver-kernel") return ModelId::DriverKernel;
  if (name == "gdb-kernel") return ModelId::GdbKernel;
  if (name == "gdb-wrapper") return ModelId::GdbWrapper;
  return std::nullopt;
}

bool ProtocolModel::monitored(int channel) const noexcept {
  return std::find(monitored_channels.begin(), monitored_channels.end(), channel) !=
         monitored_channels.end();
}

const std::string& ProtocolModel::symbol_name(int symbol) const {
  return symbols[static_cast<std::size_t>(symbol)];
}

const std::string& ProtocolModel::channel_name(int channel) const {
  return channels[static_cast<std::size_t>(channel)];
}

namespace {

/// Driver-Kernel (paper §4.2 + the PR 2 quiesce degradation). Endpoint A is
/// DriverKernelExtension (SystemC kernel), endpoint B is ScPortDriver.
ProtocolModel make_driver_kernel(const ModelOptions& o) {
  ProtocolModel m;
  m.id = ModelId::DriverKernel;
  m.name = model_name(m.id);
  m.wire = WireFormat::DriverKernel;
  m.symbols = {"READ", "WRITE", "READ-REPLY", "INTERRUPT", "GARBAGE"};
  m.channels = {"data", "irq"};
  m.monitored_channels = {kChData};  // the capture/observer sits on the data socket
  m.garbage_symbol = kDkGarbage;

  ProtocolAutomaton kernel("kernel");
  const int run = kernel.add_state("Run", /*accepting=*/true);
  const int must_reply = kernel.add_state("MustReply");
  const int quiesced = kernel.add_state("Quiesced", /*accepting=*/true, /*closed=*/true);
  kernel.recv(run, kDkWrite, kChData, run);
  kernel.recv(run, kDkRead, kChData, must_reply);
  if (o.push_outputs) kernel.send(run, kDkReadReply, kChData, run);
  if (o.interrupts) kernel.send(run, kDkInterrupt, kChIrq, run);
  kernel.send(must_reply, kDkReadReply, kChData, run);
  if (o.recovery) {
    kernel.recv(run, kDkGarbage, kChData, quiesced, /*recovery=*/true);
    kernel.internal(run, quiesced, "quiesce", /*recovery=*/true);
    kernel.internal(must_reply, quiesced, "quiesce", /*recovery=*/true);
  }
  m.endpoint_a = std::move(kernel);

  ProtocolAutomaton driver("driver");
  const int idle = driver.add_state("Idle");
  const int await_reply = driver.add_state("AwaitReply");
  const int done = driver.add_state("Done", /*accepting=*/true);
  const int degraded = driver.add_state("Degraded", /*accepting=*/true);
  driver.send(idle, kDkWrite, kChData, idle);
  if (o.sync_reads) driver.send(idle, kDkRead, kChData, await_reply);
  driver.recv(idle, kDkReadReply, kChData, idle);
  driver.recv(idle, kDkInterrupt, kChIrq, idle);
  driver.internal(idle, done, "finish");
  driver.recv(await_reply, kDkReadReply, kChData, idle);
  driver.recv(await_reply, kDkInterrupt, kChIrq, await_reply);
  if (o.recovery) {
    driver.recv(idle, kDkGarbage, kChData, degraded, /*recovery=*/true);
    driver.internal(idle, degraded, "degrade", /*recovery=*/true);
    driver.recv(await_reply, kDkGarbage, kChData, degraded, /*recovery=*/true);
    driver.internal(await_reply, degraded, "timeout", /*recovery=*/true);
  }
  for (int final : {done, degraded}) {
    // Terminal states keep draining late kernel traffic (pushes, interrupts)
    // without that counting as a violation.
    driver.recv(final, kDkReadReply, kChData, final);
    driver.recv(final, kDkGarbage, kChData, final);
    driver.recv(final, kDkInterrupt, kChIrq, final);
  }
  m.endpoint_b = std::move(driver);
  return m;
}

/// Shared GdbStub endpoint (identical for both RSP schemes): halted command
/// loop, deferred stop replies while running, 0x03 interrupt handling.
ProtocolAutomaton make_stub(const ModelOptions& o) {
  ProtocolAutomaton stub("stub");
  const int halted = stub.add_state("Halted", /*accepting=*/true);
  const int must_reply = stub.add_state("MustReply");
  const int running = stub.add_state("Running");
  const int must_stop = stub.add_state("MustStop");
  const int dead = stub.add_state("Dead", /*accepting=*/true, /*closed=*/true);
  stub.recv(halted, kRspQuery, kChRsp, must_reply);
  stub.recv(halted, kRspCont, kChRsp, running);
  stub.recv(halted, kRspRunQuantum, kChRsp, must_stop);
  stub.recv(halted, kRspKill, kChRsp, dead);
  stub.recv(halted, kRspIrqByte, kChRsp, halted);  // 0x03 while halted: ignored
  stub.send(must_reply, kRspReply, kChRsp, halted);
  stub.send(must_reply, kRspStopReply, kChRsp, halted);  // 's' replies with a stop
  stub.internal(running, must_stop, "hit");               // guest reaches a breakpoint
  stub.recv(running, kRspIrqByte, kChRsp, must_stop);
  stub.recv(running, kRspKill, kChRsp, dead);
  stub.send(must_stop, kRspStopReply, kChRsp, halted);
  if (o.recovery) {
    // A garbage frame draws a Nak; the peer resends, so tolerate in place.
    stub.recv(halted, kRspGarbage, kChRsp, halted, /*recovery=*/true);
    stub.recv(running, kRspGarbage, kChRsp, running, /*recovery=*/true);
    stub.internal(halted, dead, "die", /*recovery=*/true);
    stub.internal(must_reply, dead, "die", /*recovery=*/true);
    stub.internal(running, dead, "die", /*recovery=*/true);
    stub.internal(must_stop, dead, "die", /*recovery=*/true);
  }
  return stub;
}

/// Adds the terminal client states shared by both RSP clients: Killed (wire
/// torn down) and Failed (transport gave up; shutdown may still send k/0x03).
struct ClientTails {
  int killed;
  int failed;
};

ClientTails add_client_tails(ProtocolAutomaton& client) {
  ClientTails t{};
  t.killed = client.add_state("Killed", /*accepting=*/true, /*closed=*/true);
  t.failed = client.add_state("Failed", /*accepting=*/true);
  client.send(t.failed, kRspKill, kChRsp, t.killed);
  client.send(t.failed, kRspIrqByte, kChRsp, t.failed);
  for (int sym : {kRspReply, kRspStopReply, kRspGarbage}) {
    client.recv(t.failed, sym, kChRsp, t.failed);
  }
  return t;
}

ProtocolModel make_rsp_base(ModelId id) {
  ProtocolModel m;
  m.id = id;
  m.name = model_name(id);
  m.wire = WireFormat::Rsp;
  m.symbols = {"QUERY", "CONT",  "KILL",       "RUN-QUANTUM",
               "IRQ-BYTE", "REPLY", "STOP-REPLY", "GARBAGE"};
  m.channels = {"rsp"};
  m.monitored_channels = {kChRsp};
  m.garbage_symbol = kRspGarbage;
  return m;
}

/// GDB-Kernel (paper §3): the kernel-embedded GdbClient drives the stub via
/// breakpoint-synchronised continue cycles.
ProtocolModel make_gdb_kernel(const ModelOptions& o) {
  ProtocolModel m = make_rsp_base(ModelId::GdbKernel);

  ProtocolAutomaton client("client");
  const int halted = client.add_state("Halted", /*accepting=*/true);
  const int await_reply = client.add_state("AwaitReply");
  const int running = client.add_state("Running");
  const ClientTails tails = add_client_tails(client);
  client.send(halted, kRspQuery, kChRsp, await_reply);
  client.send(halted, kRspCont, kChRsp, running);
  client.send(halted, kRspKill, kChRsp, tails.killed);
  for (int sym : {kRspReply, kRspStopReply, kRspGarbage}) {
    client.recv(halted, sym, kChRsp, halted);  // stray duplicates: tolerated
  }
  client.recv(await_reply, kRspReply, kChRsp, halted);
  client.recv(await_reply, kRspStopReply, kChRsp, halted);
  client.recv(await_reply, kRspGarbage, kChRsp, await_reply);  // Nak'd, await resend
  client.send(await_reply, kRspKill, kChRsp, tails.killed);    // shutdown mid-transact
  client.send(running, kRspIrqByte, kChRsp, running);
  client.send(running, kRspKill, kChRsp, tails.killed);
  client.recv(running, kRspStopReply, kChRsp, halted);
  client.recv(running, kRspReply, kChRsp, running);
  client.recv(running, kRspGarbage, kChRsp, running);
  if (o.recovery) {
    client.send(await_reply, kRspQuery, kChRsp, await_reply, /*recovery=*/true);  // resend
    client.internal(await_reply, tails.failed, "timeout", /*recovery=*/true);
    client.internal(running, tails.failed, "giveup", /*recovery=*/true);
    client.internal(halted, tails.failed, "fail", /*recovery=*/true);
  }
  m.endpoint_a = std::move(client);
  m.endpoint_b = make_stub(o);
  return m;
}

/// GDB-Wrapper: the lock-step wrapper alternates qnisc.run quanta (or single
/// steps) with breakpoint servicing.
ProtocolModel make_gdb_wrapper(const ModelOptions& o) {
  ProtocolModel m = make_rsp_base(ModelId::GdbWrapper);

  ProtocolAutomaton wrapper("wrapper");
  const int cycle = wrapper.add_state("Cycle", /*accepting=*/true);
  const int await_reply = wrapper.add_state("AwaitReply");
  const int await_stop = wrapper.add_state("AwaitStop");
  const int done = wrapper.add_state("Done", /*accepting=*/true);
  const ClientTails tails = add_client_tails(wrapper);
  wrapper.send(cycle, kRspQuery, kChRsp, await_reply);
  wrapper.send(cycle, kRspRunQuantum, kChRsp, await_stop);
  wrapper.send(cycle, kRspKill, kChRsp, tails.killed);
  wrapper.internal(cycle, done, "finish");
  for (int sym : {kRspReply, kRspStopReply, kRspGarbage}) {
    wrapper.recv(cycle, sym, kChRsp, cycle);  // stray duplicates: tolerated
  }
  wrapper.recv(await_reply, kRspReply, kChRsp, cycle);
  wrapper.recv(await_reply, kRspStopReply, kChRsp, cycle);  // 's' step reply
  wrapper.recv(await_reply, kRspGarbage, kChRsp, await_reply);
  wrapper.send(await_reply, kRspKill, kChRsp, tails.killed);
  wrapper.recv(await_stop, kRspStopReply, kChRsp, cycle);
  wrapper.recv(await_stop, kRspReply, kChRsp, await_stop);  // stray duplicate
  wrapper.recv(await_stop, kRspGarbage, kChRsp, await_stop);
  wrapper.send(await_stop, kRspKill, kChRsp, tails.killed);
  wrapper.send(done, kRspKill, kChRsp, tails.killed);
  for (int sym : {kRspReply, kRspStopReply, kRspGarbage}) {
    wrapper.recv(done, sym, kChRsp, done);
  }
  if (o.recovery) {
    wrapper.send(await_reply, kRspQuery, kChRsp, await_reply, /*recovery=*/true);
    wrapper.internal(await_reply, tails.failed, "timeout", /*recovery=*/true);
    wrapper.send(await_stop, kRspRunQuantum, kChRsp, await_stop, /*recovery=*/true);
    wrapper.internal(await_stop, tails.failed, "timeout", /*recovery=*/true);
    wrapper.internal(cycle, tails.failed, "fail", /*recovery=*/true);
  }
  m.endpoint_a = std::move(wrapper);
  m.endpoint_b = make_stub(o);
  return m;
}

}  // namespace

ProtocolModel make_model(ModelId id, const ModelOptions& options) {
  switch (id) {
    case ModelId::DriverKernel: return make_driver_kernel(options);
    case ModelId::GdbKernel: return make_gdb_kernel(options);
    case ModelId::GdbWrapper: return make_gdb_wrapper(options);
  }
  return make_driver_kernel(options);
}

// ---------------------------------------------------------------------------
// Wire classification

namespace {

std::string printable_prefix(std::string_view payload, std::size_t max) {
  std::string out;
  for (std::size_t i = 0; i < payload.size() && i < max; ++i) {
    const unsigned char c = static_cast<unsigned char>(payload[i]);
    out += std::isprint(c) != 0 ? static_cast<char>(c) : '.';
  }
  if (payload.size() > max) out += "...";
  return out;
}

WireSymbol classify_rsp(const std::string& payload, bool toward_target) {
  WireSymbol sym;
  sym.detail = "$" + printable_prefix(payload, 24) + "#";
  if (toward_target) {
    if (!payload.empty() && payload[0] == 'c') {
      sym.symbol = kRspCont;
    } else if (!payload.empty() && payload[0] == 'k') {
      sym.symbol = kRspKill;
    } else if (payload.rfind("qnisc.run:", 0) == 0) {
      sym.symbol = kRspRunQuantum;
    } else {
      sym.symbol = kRspQuery;  // g/p/P/m/M/Z/z/H/?/s/D/...
    }
  } else {
    sym.symbol = !payload.empty() && (payload[0] == 'S' || payload[0] == 'T') ? kRspStopReply
                                                                              : kRspReply;
  }
  return sym;
}

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

StreamDecoder::StreamDecoder(WireFormat format, bool toward_target)
    : format_(format), toward_target_(toward_target) {}

std::size_t StreamDecoder::pending() const noexcept {
  return format_ == WireFormat::Rsp ? reader_.pending_bytes() : buffer_.size();
}

void StreamDecoder::feed(std::span<const std::uint8_t> bytes, std::vector<WireSymbol>& out) {
  if (wedged_) return;
  if (format_ == WireFormat::Rsp) {
    reader_.feed(bytes);
    while (std::optional<rsp::RspEvent> event = reader_.next()) {
      switch (event->kind) {
        case rsp::RspEventKind::Ack:
        case rsp::RspEventKind::Nak:
          break;  // advisory framing traffic, not part of the alphabet
        case rsp::RspEventKind::Interrupt:
          out.push_back(WireSymbol{kRspIrqByte, false, "0x03 interrupt byte"});
          break;
        case rsp::RspEventKind::Packet:
          out.push_back(classify_rsp(event->payload, toward_target_));
          break;
      }
    }
    return;
  }

  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  while (buffer_.size() >= 4) {
    const std::uint32_t size = read_le32(buffer_.data());
    if (size > ipc::kMaxMessageBody) {
      // An implausible size field means the stream desynchronized; there is
      // no way to find the next frame boundary.
      wedged_ = true;
      out.push_back(WireSymbol{kDkGarbage, true,
                               "frame size " + std::to_string(size) + " exceeds the " +
                                   std::to_string(ipc::kMaxMessageBody) + "-byte limit"});
      return;
    }
    if (buffer_.size() < 4u + size) break;
    const std::span<const std::uint8_t> body(buffer_.data() + 4, size);
    util::Result<ipc::DriverMessage> msg = ipc::decode_message_body(body);
    if (msg.ok()) {
      WireSymbol sym;
      sym.symbol = static_cast<int>(msg.value().type);
      sym.detail = std::string(ipc::msg_type_name(msg.value().type)) + "(" +
                   std::to_string(msg.value().items.size()) + " item(s)" +
                   (msg.value().items.empty() ? "" : ", " + msg.value().items.front().port) + ")";
      out.push_back(std::move(sym));
    } else {
      // Framing stays intact (the size field was plausible), so classify the
      // body as garbage and keep decoding subsequent frames.
      out.push_back(WireSymbol{kDkGarbage, true, msg.error()});
    }
    buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + size);
  }
}

// ---------------------------------------------------------------------------
// Conformance monitor

ConformanceMonitor::ConformanceMonitor(ProtocolModel model, DiagEngine& diags,
                                       MonitorOptions options)
    : model_(std::move(model)),
      diags_(diags),
      options_(std::move(options)),
      tx_(model_.wire, /*toward_target=*/true),
      rx_(model_.wire, /*toward_target=*/false) {
  current_.insert(model_.endpoint_a.initial());
}

std::set<int> ConformanceMonitor::closure(std::set<int> states, bool include_recovery) const {
  std::vector<int> worklist(states.begin(), states.end());
  while (!worklist.empty()) {
    const int s = worklist.back();
    worklist.pop_back();
    for (const ProtoTransition& t : model_.endpoint_a.from(s)) {
      if (t.recovery && !include_recovery) continue;
      const bool epsilon = t.kind == ActionKind::Internal || !model_.monitored(t.channel);
      if (epsilon && states.insert(t.to).second) worklist.push_back(t.to);
    }
  }
  return states;
}

namespace {

std::string state_names(const ProtocolAutomaton& automaton, const std::set<int>& states) {
  std::string out;
  for (int s : states) {
    if (!out.empty()) out += "|";
    out += automaton.state(s).name;
  }
  return out.empty() ? "<none>" : out;
}

}  // namespace

void ConformanceMonitor::step(ActionKind kind, const WireSymbol& sym, ipc::CaptureDir dir) {
  ++messages_seen_;
  const char* dir_name = dir == ipc::CaptureDir::Tx ? "tx" : "rx";
  const SourceLoc loc{options_.origin, static_cast<int>(messages_seen_), 0};
  const std::set<int> reach = closure(current_, /*include_recovery=*/true);

  if (sym.malformed) {
    ++violations_;
    diags_.report(Severity::Error, "NL402",
                  std::string("undecodable wire data (") + dir_name + "): " + sym.detail, loc);
  }

  std::set<int> next;
  for (int s : reach) {
    for (const ProtoTransition& t : model_.endpoint_a.from(s)) {
      if (t.kind == kind && t.symbol == sym.symbol && model_.monitored(t.channel)) {
        next.insert(t.to);
      }
    }
  }
  if (next.empty()) {
    const bool all_closed =
        std::all_of(reach.begin(), reach.end(),
                    [&](int s) { return model_.endpoint_a.state(s).closed; });
    if (all_closed) {
      ++violations_;
      diags_.report(Severity::Error, "NL403",
                    "traffic after the endpoint closed its wire (state " +
                        state_names(model_.endpoint_a, reach) + "): " +
                        model_.symbol_name(sym.symbol) + " " + dir_name,
                    loc);
    } else if (!sym.malformed) {
      ++violations_;
      diags_.report(Severity::Error, "NL401",
                    "unexpected " + model_.symbol_name(sym.symbol) + " (" + dir_name +
                        ") in state " + state_names(model_.endpoint_a, reach) +
                        (sym.detail.empty() ? "" : ": " + sym.detail),
                    loc);
    }
    // Resynchronize: any state is again possible, so one violation does not
    // cascade into a report for every subsequent message.
    for (std::size_t s = 0; s < model_.endpoint_a.states().size(); ++s) {
      next.insert(static_cast<int>(s));
    }
  }
  current_ = std::move(next);
}

void ConformanceMonitor::on_transfer(ipc::CaptureDir dir, std::span<const std::uint8_t> bytes) {
  StreamDecoder& decoder = dir == ipc::CaptureDir::Tx ? tx_ : rx_;
  std::vector<WireSymbol> symbols;
  decoder.feed(bytes, symbols);
  for (const WireSymbol& sym : symbols) {
    step(dir == ipc::CaptureDir::Tx ? ActionKind::Send : ActionKind::Recv, sym, dir);
  }
}

void ConformanceMonitor::on_event(std::string_view tag) {
  const std::set<int> reach = closure(current_, /*include_recovery=*/true);
  std::set<int> next;
  for (int s : reach) {
    for (const ProtoTransition& t : model_.endpoint_a.from(s)) {
      if (t.kind == ActionKind::Internal && t.label == tag) next.insert(t.to);
    }
  }
  if (next.empty()) {
    diags_.report(Severity::Note, "NL401",
                  "internal event '" + std::string(tag) + "' has no transition from state " +
                      state_names(model_.endpoint_a, reach),
                  SourceLoc{options_.origin, static_cast<int>(messages_seen_), 0});
    return;
  }
  current_ = std::move(next);
}

void ConformanceMonitor::finish() {
  const SourceLoc loc{options_.origin, static_cast<int>(messages_seen_), 0};
  const auto tail = [&](const StreamDecoder& decoder, const char* dir_name) {
    if (decoder.wedged()) return;  // already reported NL402 when it wedged
    if (decoder.pending() > 0) {
      ++violations_;
      diags_.report(Severity::Error, "NL402",
                    "stream ends mid-frame (" + std::to_string(decoder.pending()) +
                        " byte(s) buffered, " + dir_name + ")",
                    loc);
    }
  };
  tail(tx_, "tx");
  tail(rx_, "rx");
  if (options_.end_check) {
    const std::set<int> reach = closure(current_, /*include_recovery=*/false);
    const bool quiescent = std::any_of(reach.begin(), reach.end(), [&](int s) {
      return model_.endpoint_a.state(s).accepting;
    });
    if (!quiescent) {
      ++violations_;
      diags_.report(Severity::Warning, "NL404",
                    "stream ended in non-quiescent state " +
                        state_names(model_.endpoint_a, reach),
                    loc);
    }
  }
}

bool ConformanceMonitor::state_possible(std::string_view name) const {
  const int id = model_.endpoint_a.find_state(name);
  if (id < 0) return false;
  return closure(current_, /*include_recovery=*/true).count(id) > 0;
}

// ---------------------------------------------------------------------------
// Live monitor

LiveConformanceMonitor::LiveConformanceMonitor(ProtocolModel model, std::string origin)
    : monitor_(std::move(model), diags_, MonitorOptions{std::move(origin), true}) {}

void LiveConformanceMonitor::on_wire(ipc::CaptureDir dir, std::span<const std::uint8_t> bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  monitor_.on_transfer(dir, bytes);
}

void LiveConformanceMonitor::on_wire_event(std::string_view tag) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  monitor_.on_event(tag);
}

void LiveConformanceMonitor::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  monitor_.finish();
  finished_ = true;
}

std::size_t LiveConformanceMonitor::messages_seen() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return monitor_.messages_seen();
}

// ---------------------------------------------------------------------------
// Capture replay

std::size_t check_capture(std::span<const std::uint8_t> bytes, const ProtocolModel& model,
                          DiagEngine& diags, const std::string& origin) {
  ConformanceMonitor monitor(model, diags, MonitorOptions{origin, true});
  std::size_t replayed = 0;
  std::size_t offset = 0;
  int frame = 0;
  while (offset < bytes.size()) {
    ++frame;
    const SourceLoc loc{origin, frame, 0};
    if (bytes.size() - offset < 4) {
      diags.report(Severity::Error, "NL402",
                   "capture envelope truncated at offset " + std::to_string(offset), loc);
      break;
    }
    const std::uint32_t size = read_le32(bytes.data() + offset);
    if (size > ipc::kMaxMessageBody || offset + 4 + size > bytes.size()) {
      diags.report(Severity::Error, "NL402",
                   "capture envelope frame " + std::to_string(frame) +
                       " has implausible size " + std::to_string(size),
                   loc);
      break;
    }
    util::Result<ipc::DriverMessage> msg =
        ipc::decode_message_body(bytes.subspan(offset + 4, size));
    offset += 4 + size;
    if (!msg.ok()) {
      diags.report(Severity::Error, "NL402",
                   "capture envelope frame " + std::to_string(frame) + ": " + msg.error(), loc);
      break;
    }
    for (const ipc::MsgItem& item : msg.value().items) {
      // WireCapture::dump pseudo-ports: "<label>.tx#<seq>" / "<label>.rx#<seq>".
      const std::size_t tx = item.port.rfind(".tx#");
      const std::size_t rx = item.port.rfind(".rx#");
      if (tx == std::string::npos && rx == std::string::npos) {
        diags.report(Severity::Note, "NL402",
                     "frame " + std::to_string(frame) + " port '" + item.port +
                         "' is not a capture pseudo-port; skipped",
                     loc);
        continue;
      }
      monitor.on_transfer(tx != std::string::npos ? ipc::CaptureDir::Tx : ipc::CaptureDir::Rx,
                          item.data);
      ++replayed;
    }
  }
  monitor.finish();
  return replayed;
}

DrainResult drain_to_frame_boundary(ipc::Channel& channel, WireFormat format, bool toward_target,
                                    int timeout_ms) {
  DrainResult out;
  StreamDecoder decoder(format, toward_target);
  std::uint8_t buf[4096];
  for (;;) {
    // On a boundary only sweep what is already pending (poll); mid-frame,
    // wait up to the timeout for the sender to finish its frame.
    const bool mid_frame = decoder.pending() > 0;
    if (!channel.readable(mid_frame ? timeout_ms : 0)) break;
    const std::size_t n = channel.recv_some(buf);
    if (n == 0) break;
    decoder.feed({buf, n}, out.symbols);
    out.bytes.insert(out.bytes.end(), buf, buf + n);
    if (decoder.wedged()) break;
  }
  out.clean = decoder.pending() == 0 && !decoder.wedged();
  return out;
}

}  // namespace nisc::analysis
