// Protocol automata for the co-simulation wire (DESIGN.md §11).
//
// The paper specifies its two boundary protocols informally: §4.2 gives the
// Driver-Kernel message format in prose, §3 leans on the GDB remote serial
// protocol. This module makes each protocol explicit as a pair of
// communicating finite-state machines — typed states, transitions labelled
// Send/Recv/Internal with a message symbol and a channel — so the same
// automaton can be
//   (a) composed with a bounded-channel environment and model-checked
//       exhaustively (analysis/explore.hpp), and
//   (b) walked against live or captured wire traffic by a conformance
//       monitor that turns violations into NL4xx diagnostics.
//
// Five models are provided:
//   driver-kernel  ScPortDriver <-> DriverKernelExtension (data + irq port,
//                  including the PR 2 quiesce degradation states)
//   gdb-kernel     GdbClient (kernel-embedded) <-> GdbStub over RSP
//   gdb-wrapper    GdbClient (lock-step wrapper) <-> GdbStub over RSP
//   worker         Supervisor <-> cosim_issworker recovery wire (Hello,
//                  Start/Resume replay, DevWrite/WriteAck + DevRead/ReadReply
//                  with irq high-water drain, Ckpt, seq-0 side-band)
//   driver-irq     DriverKernelExtension -> InterruptPump delivery +
//                  ISR-acknowledge cycle on the otherwise-epsilon irq socket
// Endpoint A is the side the capture layer taps (SystemC kernel / client /
// supervisor; for driver-irq, the pump end that receives deliveries);
// endpoint B is the peer. RSP '+'/'-' acks are advisory in this
// implementation (both peers tolerate their loss), so they are not part of
// the modelled alphabet and the monitor filters them out.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diag.hpp"
#include "ipc/capture.hpp"
#include "ipc/channel.hpp"
#include "rsp/packet.hpp"

namespace nisc::analysis {

// ---------------------------------------------------------------------------
// Automaton structure

enum class ActionKind : std::uint8_t { Send, Recv, Internal };

struct ProtoState {
  std::string name;
  /// Quiescent: the protocol may legitimately stop here (end of stream).
  bool accepting = false;
  /// The endpoint tore its wire down in this state: traffic observed while
  /// every candidate state is closed is an NL403 violation, and the model
  /// checker discards messages sent toward a closed endpoint (connection
  /// reset semantics).
  bool closed = false;
  /// Endpoint B blocks here waiting for the peer to answer effect unit N
  /// (-1 = not waiting). The crash-fault explorer classifies a stuck run in
  /// such a state as NL414 lost-ack when A already applied the unit.
  int awaiting_effect = -1;
};

struct ProtoTransition {
  ActionKind kind = ActionKind::Internal;
  int symbol = -1;   ///< model symbol id (Send/Recv only)
  int channel = -1;  ///< model channel id (Send/Recv only)
  int to = 0;
  /// Part of the resilience machinery (quiesce/timeout/resend/die) rather
  /// than the core protocol. The monitor's end-of-stream check does not
  /// assume recovery happened; ModelOptions::recovery omits these entirely.
  bool recovery = false;
  /// Internal transitions carry a label ("quiesce", "timeout", ...) so the
  /// monitor can follow out-of-band notifications (WireObserver events).
  std::string label;
  /// Crash-consistency semantics for the crash-fault explorer
  /// (explore.hpp EnvOptions::crashing). `apply_effect`: endpoint A durably
  /// applies effect unit N on this transition — taking it while the unit is
  /// already applied is NL413 duplicate-effect. `retire_effect`: endpoint B
  /// retires unit N (the guest observed the ack). `ckpt_state`/`ckpt_mask`:
  /// applying this checkpoint pins B's respawn point to that state with that
  /// retired-unit mask.
  int apply_effect = -1;
  int retire_effect = -1;
  int ckpt_state = -1;
  std::uint32_t ckpt_mask = 0;
};

/// One endpoint's protocol automaton.
class ProtocolAutomaton {
 public:
  explicit ProtocolAutomaton(std::string role) : role_(std::move(role)) {}

  int add_state(std::string name, bool accepting = false, bool closed = false);
  ProtoTransition& send(int from, int symbol, int channel, int to, bool recovery = false);
  ProtoTransition& recv(int from, int symbol, int channel, int to, bool recovery = false);
  ProtoTransition& internal(int from, int to, std::string label, bool recovery = false);
  /// Marks `state` as blocking on the peer's answer for effect unit `effect`.
  void set_awaiting(int state, int effect);

  const std::string& role() const noexcept { return role_; }
  const std::vector<ProtoState>& states() const noexcept { return states_; }
  const ProtoState& state(int id) const { return states_[static_cast<std::size_t>(id)]; }
  const std::vector<ProtoTransition>& from(int state) const {
    return by_state_[static_cast<std::size_t>(state)];
  }
  int initial() const noexcept { return 0; }
  int find_state(std::string_view name) const noexcept;  ///< -1 when absent

 private:
  std::string role_;
  std::vector<ProtoState> states_;
  std::vector<std::vector<ProtoTransition>> by_state_;
};

// ---------------------------------------------------------------------------
// Models

enum class ModelId : std::uint8_t { DriverKernel, GdbKernel, GdbWrapper, Worker, DriverIrq };

const char* model_name(ModelId id) noexcept;
std::optional<ModelId> model_from_name(std::string_view name) noexcept;

/// Which wire framing a model's traffic uses.
enum class WireFormat : std::uint8_t { DriverKernel, Rsp, Worker };

struct ModelOptions {
  /// Include the resilience transitions (quiesce/degrade/timeout/die). The
  /// conformance monitor always wants these; the model checker disables them
  /// to prove the *protocol itself* deadlock-free, not its escape hatches.
  bool recovery = true;
  /// Driver-Kernel only: the kernel pushes fresh iss_out values
  /// spontaneously (DriverKernelOptions::push_outputs).
  bool push_outputs = true;
  /// Driver-Kernel only: the driver issues synchronous READ requests.
  bool sync_reads = true;
  /// Driver-Kernel only: the kernel raises device interrupts.
  bool interrupts = true;
  /// Worker only: the seq-0 observability side-band is active (the spawn
  /// ClockSync handshake plus PullObs/ObsReport, legal in every non-closed
  /// state for the monitor).
  bool sideband = true;
  /// Worker only: the supervisor keeps its reply log, so a replayed DevWrite
  /// or DevRead is re-acked from the log instead of re-applied. Turning this
  /// off is the NL413 negative control: recovery replays then duplicate the
  /// device effect.
  bool worker_reply_log = true;
  /// Worker only: prune the reply log at ack time instead of at checkpoint
  /// time. The NL414 negative control: a post-crash replay of an
  /// already-applied unit finds no log entry, so the worker's ack is lost.
  bool worker_eager_prune = false;
  /// Driver-Irq only: decode the channel as Worker wire frames instead of
  /// Driver-Kernel messages. This is the live-monitor flavor for the
  /// supervisor's irq socket: Irq frames out, respawn re-sends tolerated,
  /// the ISR acknowledge stays an internal epsilon (`flip_direction` puts
  /// the supervisor in the sender role).
  bool worker_wire = false;
};

/// How endpoint B dies and respawns under the crash-fault environment
/// (explore.hpp EnvOptions::crashing). The respawn handshake
/// (Hello -> Resume + irq-log re-send) is modelled atomically: the killed
/// endpoint resumes from its last applied checkpoint (or `b_restart` when
/// none was taken), every in-flight queue is flushed, and the environment
/// re-enqueues the irq for each unit A applied but the restored B has not
/// retired — exactly the supervisor's irq_log re-send on Start and Resume.
struct CrashSpec {
  bool enabled = false;
  int units = 0;           ///< number of durable effect units in the model
  int b_restart = -1;      ///< B's respawn state when no checkpoint exists
  int a_serve = -1;        ///< A's post-handshake state (A mid-handshake folds here)
  std::vector<int> a_handshake_states;  ///< A states folded to `a_serve` on crash
  std::vector<int> a_stable_states;     ///< A states where a kill may strike
  int irq_channel = -1;
  /// Per effect unit: irq symbol the environment re-delivers on respawn
  /// (-1 = the unit raises no interrupt).
  std::vector<int> unit_irq_symbols;
};

/// A complete two-endpoint protocol model.
struct ProtocolModel {
  ModelId id = ModelId::DriverKernel;
  std::string name;
  WireFormat wire = WireFormat::DriverKernel;
  std::vector<std::string> symbols;
  std::vector<std::string> channels;
  /// Channels the conformance monitor can observe (the capture layer sits on
  /// one socket; Driver-Kernel interrupts travel on a second, unobserved
  /// one). Transitions on unmonitored channels are epsilon to the monitor.
  std::vector<int> monitored_channels;
  int garbage_symbol = -1;  ///< symbol for undecodable traffic, -1 if none
  /// Out-of-band event tag announcing a kill+respawn cycle (the supervisor's
  /// "respawn" notification). The monitor resets both stream decoders — a
  /// SIGKILL legitimately truncates a frame mid-wire — and resynchronizes to
  /// `reset_state` instead of treating the event as an Internal label.
  std::string reset_event;
  int reset_state = -1;  ///< endpoint A state after `reset_event`
  CrashSpec crash;       ///< crash-fault environment hooks (explore.hpp)
  ProtocolAutomaton endpoint_a{"a"};  ///< SystemC side (kernel / client)
  ProtocolAutomaton endpoint_b{"b"};  ///< target side (driver / stub)

  bool monitored(int channel) const noexcept;
  const std::string& symbol_name(int symbol) const;
  const std::string& channel_name(int channel) const;
  int channel_id(std::string_view name) const noexcept;  ///< -1 when absent
};

ProtocolModel make_model(ModelId id, const ModelOptions& options = {});

// ---------------------------------------------------------------------------
// Wire classification

/// One classified protocol message recovered from a byte stream.
struct WireSymbol {
  int symbol = -1;
  bool malformed = false;  ///< undecodable bytes, classified as garbage
  std::string detail;      ///< human-readable rendering for diagnostics
};

/// Incremental per-direction reassembler: raw transport bytes in, protocol
/// symbols out. Driver-Kernel frames are rebuilt across arbitrary chunk
/// boundaries (recv_exact captures header and body separately); worker
/// frames (`u32 len | u8 op | u64 seq | payload`) are reassembled the same
/// way with the optional 12-byte FTID trace trailer stripped by length +
/// magic; RSP streams reuse rsp::PacketReader ('+'/'-' acks produce no
/// symbol).
class StreamDecoder {
 public:
  /// `toward_target`: bytes flowing A->B (commands) rather than B->A
  /// (replies) — RSP payloads classify differently per direction.
  StreamDecoder(WireFormat format, bool toward_target);

  void feed(std::span<const std::uint8_t> bytes, std::vector<WireSymbol>& out);

  /// Drops any partial frame and un-wedges: the stream legitimately restarts
  /// from a frame boundary (a killed worker's socket is replaced by a fresh
  /// one on respawn).
  void reset();

  /// Bytes buffered mid-frame (a non-zero value at end of stream is NL402).
  std::size_t pending() const noexcept;
  /// True once the stream desynchronized beyond recovery (bad frame size).
  bool wedged() const noexcept { return wedged_; }

 private:
  WireFormat format_;
  bool toward_target_;
  bool wedged_ = false;
  std::vector<std::uint8_t> buffer_;  // Driver-Kernel reassembly
  rsp::PacketReader reader_;          // RSP reassembly
};

/// Result of draining a live wire up to a frame boundary (the checkpoint
/// subsystem's frame-boundary invariant, DESIGN.md §12).
struct DrainResult {
  /// Raw bytes consumed from the channel. When `clean`, these are whole
  /// frames — exactly what cosim::ChannelSnapshot::inflight may store.
  std::vector<std::uint8_t> bytes;
  /// Complete protocol messages recovered from `bytes`.
  std::vector<WireSymbol> symbols;
  /// True when the stream landed on a frame boundary (no partial frame
  /// buffered, stream not wedged). A snapshot MUST NOT be taken otherwise.
  bool clean = false;
};

/// Reads everything pending on `channel` and keeps reading (up to
/// `timeout_ms` per wait) while the decoder sits mid-frame, so the returned
/// bytes end on a frame boundary whenever the sender completes its frames
/// within the timeout. Used to quiesce a live Driver-Kernel or RSP wire
/// before a checkpoint: snapshots never contain a partial frame.
DrainResult drain_to_frame_boundary(ipc::Channel& channel, WireFormat format,
                                    bool toward_target, int timeout_ms = 100);

// ---------------------------------------------------------------------------
// Conformance monitor

struct MonitorOptions {
  /// Diagnostic origin (SourceLoc::file), e.g. a capture path or "<wire>".
  std::string origin = "<wire>";
  /// Report NL404 when the stream ends with no accepting candidate state.
  bool end_check = true;
};

/// NFA walk of endpoint A's automaton over observed traffic (subset
/// construction: Internal transitions and unmonitored channels are epsilon).
/// Rules:
///   NL401 (error)    message impossible in every candidate state
///   NL402 (error)    undecodable wire data / stream ends mid-frame
///   NL403 (error)    traffic observed after the endpoint closed (quiesce)
///   NL404 (warning)  stream ends in a non-quiescent protocol state
class ConformanceMonitor {
 public:
  ConformanceMonitor(ProtocolModel model, DiagEngine& diags, MonitorOptions options = {});

  /// Feeds one observed transfer (Tx = endpoint A sent, Rx = A received).
  void on_transfer(ipc::CaptureDir dir, std::span<const std::uint8_t> bytes);

  /// Applies an out-of-band internal event by label (e.g. "quiesce" from
  /// DriverKernelExtension). Unknown labels are reported as notes.
  void on_event(std::string_view tag);

  /// End-of-stream checks; call once when the wire goes away.
  void finish();

  /// True when `name` is a candidate state (testing/introspection).
  bool state_possible(std::string_view name) const;
  std::size_t messages_seen() const noexcept { return messages_seen_; }
  std::size_t violations() const noexcept { return violations_; }
  const ProtocolModel& model() const noexcept { return model_; }

 private:
  /// Epsilon closure: Internal transitions plus transitions on unmonitored
  /// channels. The end-of-stream check excludes recovery transitions — a
  /// stream may not *assume* the endpoint escaped through one.
  std::set<int> closure(std::set<int> states, bool include_recovery) const;
  void step(ActionKind kind, const WireSymbol& sym, ipc::CaptureDir dir);

  ProtocolModel model_;
  DiagEngine& diags_;
  MonitorOptions options_;
  StreamDecoder tx_;
  StreamDecoder rx_;
  std::set<int> current_;
  std::size_t messages_seen_ = 0;
  std::size_t violations_ = 0;
};

/// Thread-safe WireObserver adapter: attach to a live ipc::Channel (via
/// Channel::attach_observer / the session configs) and every transfer is
/// conformance-checked as it happens. Owns its DiagEngine; read it after
/// finish() or once the channel is quiet.
class LiveConformanceMonitor final : public ipc::WireObserver {
 public:
  /// `flip_direction`: the observer sits on endpoint B's channel end (e.g.
  /// the InterruptPump side), so the tap's Rx is an A-side send and vice
  /// versa; flip before feeding the monitor.
  LiveConformanceMonitor(ProtocolModel model, std::string origin, bool flip_direction = false);

  void on_wire(ipc::CaptureDir dir, std::span<const std::uint8_t> bytes) override;
  void on_wire_event(std::string_view tag) override;

  /// Runs the end-of-stream checks once (idempotent).
  void finish();

  DiagEngine& diags() noexcept { return diags_; }
  std::size_t messages_seen() const;

 private:
  mutable std::mutex mutex_;
  DiagEngine diags_;
  ConformanceMonitor monitor_;
  bool flip_direction_ = false;
  bool finished_ = false;
};

/// Replays a WireCapture::dump() post-mortem (concatenated WRITE frames with
/// "<label>.tx#N" / ".rx#N" pseudo-ports) through a ConformanceMonitor.
/// Returns the number of transfers replayed.
std::size_t check_capture(std::span<const std::uint8_t> bytes, const ProtocolModel& model,
                          DiagEngine& diags, const std::string& origin);

}  // namespace nisc::analysis
