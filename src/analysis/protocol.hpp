// Protocol automata for the co-simulation wire (DESIGN.md §11).
//
// The paper specifies its two boundary protocols informally: §4.2 gives the
// Driver-Kernel message format in prose, §3 leans on the GDB remote serial
// protocol. This module makes each protocol explicit as a pair of
// communicating finite-state machines — typed states, transitions labelled
// Send/Recv/Internal with a message symbol and a channel — so the same
// automaton can be
//   (a) composed with a bounded-channel environment and model-checked
//       exhaustively (analysis/explore.hpp), and
//   (b) walked against live or captured wire traffic by a conformance
//       monitor that turns violations into NL4xx diagnostics.
//
// Three models are provided, one per co-simulation scheme:
//   driver-kernel  ScPortDriver <-> DriverKernelExtension (data + irq port,
//                  including the PR 2 quiesce degradation states)
//   gdb-kernel     GdbClient (kernel-embedded) <-> GdbStub over RSP
//   gdb-wrapper    GdbClient (lock-step wrapper) <-> GdbStub over RSP
// Endpoint A is always the SystemC side (kernel extension / client); endpoint
// B is the target side (driver / stub). RSP '+'/'-' acks are advisory in this
// implementation (both peers tolerate their loss), so they are not part of
// the modelled alphabet and the monitor filters them out.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diag.hpp"
#include "ipc/capture.hpp"
#include "ipc/channel.hpp"
#include "rsp/packet.hpp"

namespace nisc::analysis {

// ---------------------------------------------------------------------------
// Automaton structure

enum class ActionKind : std::uint8_t { Send, Recv, Internal };

struct ProtoState {
  std::string name;
  /// Quiescent: the protocol may legitimately stop here (end of stream).
  bool accepting = false;
  /// The endpoint tore its wire down in this state: traffic observed while
  /// every candidate state is closed is an NL403 violation, and the model
  /// checker discards messages sent toward a closed endpoint (connection
  /// reset semantics).
  bool closed = false;
};

struct ProtoTransition {
  ActionKind kind = ActionKind::Internal;
  int symbol = -1;   ///< model symbol id (Send/Recv only)
  int channel = -1;  ///< model channel id (Send/Recv only)
  int to = 0;
  /// Part of the resilience machinery (quiesce/timeout/resend/die) rather
  /// than the core protocol. The monitor's end-of-stream check does not
  /// assume recovery happened; ModelOptions::recovery omits these entirely.
  bool recovery = false;
  /// Internal transitions carry a label ("quiesce", "timeout", ...) so the
  /// monitor can follow out-of-band notifications (WireObserver events).
  std::string label;
};

/// One endpoint's protocol automaton.
class ProtocolAutomaton {
 public:
  explicit ProtocolAutomaton(std::string role) : role_(std::move(role)) {}

  int add_state(std::string name, bool accepting = false, bool closed = false);
  void send(int from, int symbol, int channel, int to, bool recovery = false);
  void recv(int from, int symbol, int channel, int to, bool recovery = false);
  void internal(int from, int to, std::string label, bool recovery = false);

  const std::string& role() const noexcept { return role_; }
  const std::vector<ProtoState>& states() const noexcept { return states_; }
  const ProtoState& state(int id) const { return states_[static_cast<std::size_t>(id)]; }
  const std::vector<ProtoTransition>& from(int state) const {
    return by_state_[static_cast<std::size_t>(state)];
  }
  int initial() const noexcept { return 0; }
  int find_state(std::string_view name) const noexcept;  ///< -1 when absent

 private:
  std::string role_;
  std::vector<ProtoState> states_;
  std::vector<std::vector<ProtoTransition>> by_state_;
};

// ---------------------------------------------------------------------------
// Models

enum class ModelId : std::uint8_t { DriverKernel, GdbKernel, GdbWrapper };

const char* model_name(ModelId id) noexcept;
std::optional<ModelId> model_from_name(std::string_view name) noexcept;

/// Which wire framing a model's traffic uses.
enum class WireFormat : std::uint8_t { DriverKernel, Rsp };

struct ModelOptions {
  /// Include the resilience transitions (quiesce/degrade/timeout/die). The
  /// conformance monitor always wants these; the model checker disables them
  /// to prove the *protocol itself* deadlock-free, not its escape hatches.
  bool recovery = true;
  /// Driver-Kernel only: the kernel pushes fresh iss_out values
  /// spontaneously (DriverKernelOptions::push_outputs).
  bool push_outputs = true;
  /// Driver-Kernel only: the driver issues synchronous READ requests.
  bool sync_reads = true;
  /// Driver-Kernel only: the kernel raises device interrupts.
  bool interrupts = true;
};

/// A complete two-endpoint protocol model.
struct ProtocolModel {
  ModelId id = ModelId::DriverKernel;
  std::string name;
  WireFormat wire = WireFormat::DriverKernel;
  std::vector<std::string> symbols;
  std::vector<std::string> channels;
  /// Channels the conformance monitor can observe (the capture layer sits on
  /// one socket; Driver-Kernel interrupts travel on a second, unobserved
  /// one). Transitions on unmonitored channels are epsilon to the monitor.
  std::vector<int> monitored_channels;
  int garbage_symbol = -1;  ///< symbol for undecodable traffic, -1 if none
  ProtocolAutomaton endpoint_a{"a"};  ///< SystemC side (kernel / client)
  ProtocolAutomaton endpoint_b{"b"};  ///< target side (driver / stub)

  bool monitored(int channel) const noexcept;
  const std::string& symbol_name(int symbol) const;
  const std::string& channel_name(int channel) const;
};

ProtocolModel make_model(ModelId id, const ModelOptions& options = {});

// ---------------------------------------------------------------------------
// Wire classification

/// One classified protocol message recovered from a byte stream.
struct WireSymbol {
  int symbol = -1;
  bool malformed = false;  ///< undecodable bytes, classified as garbage
  std::string detail;      ///< human-readable rendering for diagnostics
};

/// Incremental per-direction reassembler: raw transport bytes in, protocol
/// symbols out. Driver-Kernel frames are rebuilt across arbitrary chunk
/// boundaries (recv_exact captures header and body separately); RSP streams
/// reuse rsp::PacketReader ('+'/'-' acks produce no symbol).
class StreamDecoder {
 public:
  /// `toward_target`: bytes flowing A->B (commands) rather than B->A
  /// (replies) — RSP payloads classify differently per direction.
  StreamDecoder(WireFormat format, bool toward_target);

  void feed(std::span<const std::uint8_t> bytes, std::vector<WireSymbol>& out);

  /// Bytes buffered mid-frame (a non-zero value at end of stream is NL402).
  std::size_t pending() const noexcept;
  /// True once the stream desynchronized beyond recovery (bad frame size).
  bool wedged() const noexcept { return wedged_; }

 private:
  WireFormat format_;
  bool toward_target_;
  bool wedged_ = false;
  std::vector<std::uint8_t> buffer_;  // Driver-Kernel reassembly
  rsp::PacketReader reader_;          // RSP reassembly
};

/// Result of draining a live wire up to a frame boundary (the checkpoint
/// subsystem's frame-boundary invariant, DESIGN.md §12).
struct DrainResult {
  /// Raw bytes consumed from the channel. When `clean`, these are whole
  /// frames — exactly what cosim::ChannelSnapshot::inflight may store.
  std::vector<std::uint8_t> bytes;
  /// Complete protocol messages recovered from `bytes`.
  std::vector<WireSymbol> symbols;
  /// True when the stream landed on a frame boundary (no partial frame
  /// buffered, stream not wedged). A snapshot MUST NOT be taken otherwise.
  bool clean = false;
};

/// Reads everything pending on `channel` and keeps reading (up to
/// `timeout_ms` per wait) while the decoder sits mid-frame, so the returned
/// bytes end on a frame boundary whenever the sender completes its frames
/// within the timeout. Used to quiesce a live Driver-Kernel or RSP wire
/// before a checkpoint: snapshots never contain a partial frame.
DrainResult drain_to_frame_boundary(ipc::Channel& channel, WireFormat format,
                                    bool toward_target, int timeout_ms = 100);

// ---------------------------------------------------------------------------
// Conformance monitor

struct MonitorOptions {
  /// Diagnostic origin (SourceLoc::file), e.g. a capture path or "<wire>".
  std::string origin = "<wire>";
  /// Report NL404 when the stream ends with no accepting candidate state.
  bool end_check = true;
};

/// NFA walk of endpoint A's automaton over observed traffic (subset
/// construction: Internal transitions and unmonitored channels are epsilon).
/// Rules:
///   NL401 (error)    message impossible in every candidate state
///   NL402 (error)    undecodable wire data / stream ends mid-frame
///   NL403 (error)    traffic observed after the endpoint closed (quiesce)
///   NL404 (warning)  stream ends in a non-quiescent protocol state
class ConformanceMonitor {
 public:
  ConformanceMonitor(ProtocolModel model, DiagEngine& diags, MonitorOptions options = {});

  /// Feeds one observed transfer (Tx = endpoint A sent, Rx = A received).
  void on_transfer(ipc::CaptureDir dir, std::span<const std::uint8_t> bytes);

  /// Applies an out-of-band internal event by label (e.g. "quiesce" from
  /// DriverKernelExtension). Unknown labels are reported as notes.
  void on_event(std::string_view tag);

  /// End-of-stream checks; call once when the wire goes away.
  void finish();

  /// True when `name` is a candidate state (testing/introspection).
  bool state_possible(std::string_view name) const;
  std::size_t messages_seen() const noexcept { return messages_seen_; }
  std::size_t violations() const noexcept { return violations_; }
  const ProtocolModel& model() const noexcept { return model_; }

 private:
  /// Epsilon closure: Internal transitions plus transitions on unmonitored
  /// channels. The end-of-stream check excludes recovery transitions — a
  /// stream may not *assume* the endpoint escaped through one.
  std::set<int> closure(std::set<int> states, bool include_recovery) const;
  void step(ActionKind kind, const WireSymbol& sym, ipc::CaptureDir dir);

  ProtocolModel model_;
  DiagEngine& diags_;
  MonitorOptions options_;
  StreamDecoder tx_;
  StreamDecoder rx_;
  std::set<int> current_;
  std::size_t messages_seen_ = 0;
  std::size_t violations_ = 0;
};

/// Thread-safe WireObserver adapter: attach to a live ipc::Channel (via
/// Channel::attach_observer / the session configs) and every transfer is
/// conformance-checked as it happens. Owns its DiagEngine; read it after
/// finish() or once the channel is quiet.
class LiveConformanceMonitor final : public ipc::WireObserver {
 public:
  LiveConformanceMonitor(ProtocolModel model, std::string origin);

  void on_wire(ipc::CaptureDir dir, std::span<const std::uint8_t> bytes) override;
  void on_wire_event(std::string_view tag) override;

  /// Runs the end-of-stream checks once (idempotent).
  void finish();

  DiagEngine& diags() noexcept { return diags_; }
  std::size_t messages_seen() const;

 private:
  mutable std::mutex mutex_;
  DiagEngine diags_;
  ConformanceMonitor monitor_;
  bool finished_ = false;
};

/// Replays a WireCapture::dump() post-mortem (concatenated WRITE frames with
/// "<label>.tx#N" / ".rx#N" pseudo-ports) through a ConformanceMonitor.
/// Returns the number of transfers replayed.
std::size_t check_capture(std::span<const std::uint8_t> bytes, const ProtocolModel& model,
                          DiagEngine& diags, const std::string& origin);

}  // namespace nisc::analysis
