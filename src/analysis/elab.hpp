// Elaboration-time model checks.
//
// The kernel's own elaboration (sc_simcontext::elaborate) throws on the
// first defect it meets; these passes instead walk the not-yet-elaborated
// design and report *every* defect through the diagnostics engine, so a
// model author sees the whole picture in one run.
//
// Rules:
//  * elab.unbound-port (error): an sc_in/sc_out was never bound to a signal
//    (elaboration would throw).
//  * elab.iss-process-not-sensitized (warning): an iss_process (the paper's
//    §3.1 ISS-boundary process kind) has no static sensitivity and no
//    pending deferred sensitivity — it would run once at initialization and
//    never again, so ISS traffic could never reach it.
//  * elab.iss-port-unbound (warning): an iss_in/iss_out port no breakpoint
//    binding refers to — no guest pragma routes data to/from it.
//  * elab.binding-unknown-port (error): a breakpoint binding names an iss
//    port that does not exist in the design.
//  * elab.binding-direction (error): a binding's direction contradicts the
//    port it names (iss_in pragma -> Out port or vice versa).
#pragma once

#include <span>

#include "analysis/diag.hpp"
#include "cosim/pragma.hpp"
#include "sysc/kernel.hpp"

namespace nisc::analysis {

/// Structural checks needing only the design: unbound ports, unsensitized
/// iss processes. Safe to call before ctx.elaborate(); does not modify the
/// design. Returns the number of diagnostics added.
std::size_t check_elaboration(const sysc::sc_simcontext& ctx, DiagEngine& diags);

/// Cross-checks the design's iss ports against resolved guest breakpoint
/// bindings (cosim::resolve_bindings output). Returns diagnostics added.
std::size_t check_iss_bindings(const sysc::sc_simcontext& ctx,
                               std::span<const cosim::BreakpointBinding> bindings,
                               DiagEngine& diags);

}  // namespace nisc::analysis
