#include "analysis/dataflow.hpp"

#include <algorithm>

namespace nisc::analysis {

std::vector<bool> reachable_blocks(const Cfg& cfg, std::size_t from, EdgeMask mask) {
  std::vector<bool> seen(cfg.blocks().size(), false);
  if (from == Cfg::npos || from >= cfg.blocks().size()) return seen;
  std::vector<std::size_t> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    std::size_t b = stack.back();
    stack.pop_back();
    for (const CfgEdge& edge : cfg.blocks()[b].succs) {
      if ((edge_bit(edge.kind) & mask) == 0) continue;
      if (!seen[edge.block]) {
        seen[edge.block] = true;
        stack.push_back(edge.block);
      }
    }
  }
  return seen;
}

std::vector<std::size_t> reverse_post_order(const Cfg& cfg, std::size_t from, EdgeMask mask) {
  std::vector<std::size_t> post;
  if (from == Cfg::npos || from >= cfg.blocks().size()) return post;
  // Iterative DFS with an explicit successor cursor per frame.
  std::vector<bool> seen(cfg.blocks().size(), false);
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // (block, next succ index)
  stack.emplace_back(from, 0);
  seen[from] = true;
  while (!stack.empty()) {
    auto& [b, cursor] = stack.back();
    const std::vector<CfgEdge>& succs = cfg.blocks()[b].succs;
    bool descended = false;
    while (cursor < succs.size()) {
      const CfgEdge& edge = succs[cursor++];
      if ((edge_bit(edge.kind) & mask) == 0) continue;
      if (!seen[edge.block]) {
        seen[edge.block] = true;
        stack.emplace_back(edge.block, 0);
        descended = true;
        break;
      }
    }
    if (!descended && cursor >= succs.size()) {
      post.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(post.begin(), post.end());
  return post;
}

}  // namespace nisc::analysis
