// Regression-test emission for model-checker counterexamples
// (cosim_lint --emit-test=DIR).
//
// Every counterexample in an ExploreReport is compiled into one gtest TEST
// in a self-contained C++ translation unit:
//   * the minimal trace and the violating global state, as comments, so the
//     test documents the exact interleaving it guards against;
//   * a re-run of the exhaustive exploration under the same ModelOptions /
//     EnvOptions, asserting the same NL41x violation kind is rediscovered —
//     the model checker is its own oracle, so the test fails the moment a
//     protocol change silently loses (or fixes) the counterexample;
//   * the ipc::FaultPlan that reproduces the trace's environment faults as
//     endpoint send faults (analysis::fault_plan_for), ready to wire into a
//     FaultyChannel when the scenario graduates to an end-to-end test.
//
// The emitted file compiles against the repo's own headers and gtest; it is
// a starting point meant to be reviewed and committed, not regenerated on
// every build.
#pragma once

#include <string>

#include "analysis/explore.hpp"
#include "analysis/protocol.hpp"

namespace nisc::analysis {

/// Filename the generated TU should be written to, e.g.
/// "emitted_driver_kernel_test.cpp".
std::string emitted_test_filename(ModelId id);

/// Renders the complete gtest translation unit for `report`'s
/// counterexamples (one TEST per violation). The model is rebuilt inside
/// the TU from `id` + `options`, and explored under `env` — the exact
/// configuration that produced `report`. Returns the file contents; a clean
/// report yields a TU with a single always-passing documentation TEST.
std::string emit_regression_tests(const ExploreReport& report, ModelId id,
                                  const ModelOptions& options, const EnvOptions& env);

}  // namespace nisc::analysis
