#include "analysis/frame.hpp"

#include <algorithm>
#include <string_view>

#include "cosim/worker.hpp"
#include "ipc/message.hpp"
#include "util/hex.hpp"

namespace nisc::analysis {

namespace {

/// Worker dialect: {u32 body_len, u8 op, u64 seq, payload [| u64 trace_id,
/// u32 "FTID"]}. Mirrors cosim::recv_frame's validation, including the
/// length+magic rule for the optional trace trailer.
std::size_t check_worker_frames(std::span<const std::uint8_t> buffer, DiagEngine& diags,
                                const std::string& origin) {
  std::size_t good = 0;
  std::size_t offset = 0;
  int ordinal = 0;
  while (offset < buffer.size()) {
    ++ordinal;
    SourceLoc loc{origin, ordinal, 0};
    const std::size_t remaining = buffer.size() - offset;
    if (remaining < 4) {
      diags.report(Severity::Error, "frame.truncated",
                   "worker frame #" + std::to_string(ordinal) + " at offset " +
                       std::to_string(offset) + ": only " + std::to_string(remaining) +
                       " byte(s) left, length field needs 4",
                   loc);
      break;
    }
    const std::uint32_t len = util::read_le(buffer.subspan(offset), 4);
    if (len < 1 + 8 || len > cosim::kMaxWorkerFrame) {
      diags.report(Severity::Error, "frame.oversized",
                   "worker frame #" + std::to_string(ordinal) + " at offset " +
                       std::to_string(offset) + ": body length " + std::to_string(len) +
                       " outside [9, " + std::to_string(cosim::kMaxWorkerFrame) +
                       "]; stopping scan",
                   loc);
      break;
    }
    if (remaining - 4 < len) {
      diags.report(Severity::Error, "frame.truncated",
                   "worker frame #" + std::to_string(ordinal) + " at offset " +
                       std::to_string(offset) + ": body needs " + std::to_string(len) +
                       " bytes but only " + std::to_string(remaining - 4) + " remain",
                   loc);
      break;
    }
    const std::span<const std::uint8_t> body = buffer.subspan(offset + 4, len);
    const auto op = static_cast<cosim::WorkerOp>(body[0]);
    const std::string_view name = cosim::worker_op_name(op);
    if (name == "?") {
      diags.report(Severity::Error, "frame.malformed",
                   "worker frame #" + std::to_string(ordinal) + ": unknown op " +
                       std::to_string(static_cast<unsigned>(body[0])),
                   loc);
    } else {
      std::size_t payload_len = len - (1 + 8);
      const std::size_t fixed = cosim::worker_op_fixed_payload(op);
      if (fixed != 0 && payload_len == fixed + 12 &&
          util::read_le(body.subspan(1 + 8 + fixed + 8), 4) == cosim::kFrameTraceMagic) {
        payload_len = fixed;  // trace-id trailer, not payload
      }
      if (fixed != 0 && payload_len != fixed) {
        diags.report(Severity::Error, "frame.malformed",
                     "worker frame #" + std::to_string(ordinal) + " (" + std::string(name) +
                         "): payload is " + std::to_string(payload_len) + " byte(s), op fixes " +
                         std::to_string(fixed),
                     loc);
      } else {
        ++good;
      }
    }
    offset += 4 + len;
  }
  return good;
}

}  // namespace

std::size_t check_frames(std::span<const std::uint8_t> buffer, DiagEngine& diags,
                         const std::string& origin, FrameDialect dialect) {
  if (dialect == FrameDialect::Worker) return check_worker_frames(buffer, diags, origin);
  std::size_t good = 0;
  std::size_t offset = 0;
  int ordinal = 0;
  while (offset < buffer.size()) {
    ++ordinal;
    SourceLoc loc{origin, ordinal, 0};
    std::size_t remaining = buffer.size() - offset;
    if (remaining < 4) {
      diags.report(Severity::Error, "frame.truncated",
                   "frame #" + std::to_string(ordinal) + " at offset " + std::to_string(offset) +
                       ": only " + std::to_string(remaining) +
                       " byte(s) left, size field needs 4",
                   loc);
      break;
    }
    std::uint32_t size = util::read_le(buffer.subspan(offset), 4);
    if (size > ipc::kMaxMessageBody) {
      diags.report(Severity::Error, "frame.oversized",
                   "frame #" + std::to_string(ordinal) + " at offset " + std::to_string(offset) +
                       ": packet_size " + std::to_string(size) + " exceeds the " +
                       std::to_string(ipc::kMaxMessageBody) + "-byte limit; stopping scan",
                   loc);
      break;
    }
    if (remaining - 4 < size) {
      diags.report(Severity::Error, "frame.truncated",
                   "frame #" + std::to_string(ordinal) + " at offset " + std::to_string(offset) +
                       ": body needs " + std::to_string(size) + " bytes but only " +
                       std::to_string(remaining - 4) + " remain",
                   loc);
      break;
    }
    std::span<const std::uint8_t> body = buffer.subspan(offset + 4, size);
    auto decoded = ipc::decode_message_body(body);
    if (!decoded.ok()) {
      diags.report(Severity::Error, "frame.malformed",
                   "frame #" + std::to_string(ordinal) + ": " + decoded.error(), loc);
    } else {
      std::vector<std::uint8_t> reencoded = ipc::encode_message(decoded.value());
      std::span<const std::uint8_t> original = buffer.subspan(offset, 4 + size);
      if (!std::equal(reencoded.begin(), reencoded.end(), original.begin(), original.end())) {
        diags.report(Severity::Warning, "frame.roundtrip",
                     "frame #" + std::to_string(ordinal) +
                         " decodes but is not canonical: re-encoding yields " +
                         std::to_string(reencoded.size()) + " bytes vs " +
                         std::to_string(4 + size) + " on the wire",
                     loc);
      } else {
        ++good;
      }
    }
    offset += 4 + size;
  }
  return good;
}

}  // namespace nisc::analysis
