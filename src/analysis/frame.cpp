#include "analysis/frame.hpp"

#include <algorithm>

#include "ipc/message.hpp"
#include "util/hex.hpp"

namespace nisc::analysis {

std::size_t check_frames(std::span<const std::uint8_t> buffer, DiagEngine& diags,
                         const std::string& origin) {
  std::size_t good = 0;
  std::size_t offset = 0;
  int ordinal = 0;
  while (offset < buffer.size()) {
    ++ordinal;
    SourceLoc loc{origin, ordinal, 0};
    std::size_t remaining = buffer.size() - offset;
    if (remaining < 4) {
      diags.report(Severity::Error, "frame.truncated",
                   "frame #" + std::to_string(ordinal) + " at offset " + std::to_string(offset) +
                       ": only " + std::to_string(remaining) +
                       " byte(s) left, size field needs 4",
                   loc);
      break;
    }
    std::uint32_t size = util::read_le(buffer.subspan(offset), 4);
    if (size > ipc::kMaxMessageBody) {
      diags.report(Severity::Error, "frame.oversized",
                   "frame #" + std::to_string(ordinal) + " at offset " + std::to_string(offset) +
                       ": packet_size " + std::to_string(size) + " exceeds the " +
                       std::to_string(ipc::kMaxMessageBody) + "-byte limit; stopping scan",
                   loc);
      break;
    }
    if (remaining - 4 < size) {
      diags.report(Severity::Error, "frame.truncated",
                   "frame #" + std::to_string(ordinal) + " at offset " + std::to_string(offset) +
                       ": body needs " + std::to_string(size) + " bytes but only " +
                       std::to_string(remaining - 4) + " remain",
                   loc);
      break;
    }
    std::span<const std::uint8_t> body = buffer.subspan(offset + 4, size);
    auto decoded = ipc::decode_message_body(body);
    if (!decoded.ok()) {
      diags.report(Severity::Error, "frame.malformed",
                   "frame #" + std::to_string(ordinal) + ": " + decoded.error(), loc);
    } else {
      std::vector<std::uint8_t> reencoded = ipc::encode_message(decoded.value());
      std::span<const std::uint8_t> original = buffer.subspan(offset, 4 + size);
      if (!std::equal(reencoded.begin(), reencoded.end(), original.begin(), original.end())) {
        diags.report(Severity::Warning, "frame.roundtrip",
                     "frame #" + std::to_string(ordinal) +
                         " decodes but is not canonical: re-encoding yields " +
                         std::to_string(reencoded.size()) + " bytes vs " +
                         std::to_string(4 + size) + " on the wire",
                     loc);
      } else {
        ++good;
      }
    }
    offset += 4 + size;
  }
  return good;
}

}  // namespace nisc::analysis
