#include "analysis/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "analysis/flow.hpp"
#include "iss/assembler.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace nisc::analysis {
namespace {

using util::starts_with;
using util::to_lower;
using util::trim;

std::vector<std::string> split_lines(std::string_view source) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    std::size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) {
      if (pos < source.size()) lines.emplace_back(source.substr(pos));
      break;
    }
    lines.emplace_back(source.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

/// The code part of a line: everything before the first comment marker.
/// Pragma lines are comments to the assembler but not to us; the caller
/// filters them out beforehand.
std::string_view code_part(std::string_view line) {
  std::size_t cut = line.size();
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '#' || line[i] == ';') {
      cut = i;
      break;
    }
    if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      cut = i;
      break;
    }
  }
  return line.substr(0, cut);
}

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

/// Strips leading "name:" labels; returns the remaining statement text.
std::string_view strip_labels(std::string_view text) {
  text = trim(text);
  while (true) {
    std::size_t colon = text.find(':');
    if (colon == std::string_view::npos) break;
    std::string_view head = trim(text.substr(0, colon));
    if (head.empty()) break;
    bool ident = true;
    for (char c : head) {
      if (!is_identifier_char(c)) ident = false;
    }
    if (!ident) break;
    text = trim(text.substr(colon + 1));
  }
  return text;
}

bool is_pragma_line(std::string_view line) { return starts_with(trim(line), "#pragma"); }

std::string mnemonic_of(std::string_view line) {
  std::string_view t = strip_labels(code_part(line));
  std::size_t ws = t.find_first_of(" \t");
  return to_lower(ws == std::string_view::npos ? t : t.substr(0, ws));
}

/// Whole-word occurrence of `ident` in `text`.
bool references_identifier(std::string_view text, std::string_view ident) {
  std::size_t pos = 0;
  while ((pos = text.find(ident, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || !is_identifier_char(text[pos - 1]);
    std::size_t end = pos + ident.size();
    bool right_ok = end >= text.size() || !is_identifier_char(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Parses "line N: message" (the assembler/pragma error convention) into a
/// line number and the bare message; line 0 when the prefix is absent.
std::pair<int, std::string> split_line_prefix(const std::string& what) {
  if (starts_with(what, "line ")) {
    std::size_t colon = what.find(':');
    if (colon != std::string::npos) {
      auto line = util::parse_int(trim(std::string_view(what).substr(5, colon - 5)));
      if (line && *line > 0) {
        return {static_cast<int>(*line), std::string(trim(std::string_view(what).substr(colon + 1)))};
      }
    }
  }
  return {0, what};
}

/// Per-line `nolint` / `nolint(rule,...)` markers found in comments.
struct NolintMap {
  std::map<int, std::set<std::string>> by_line;  // empty set = every rule

  bool suppressed(int line, std::string_view rule) const {
    auto it = by_line.find(line);
    if (it == by_line.end()) return false;
    return it->second.empty() || it->second.count(std::string(rule)) > 0;
  }
};

NolintMap scan_nolint(const std::vector<std::string>& lines) {
  NolintMap map;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    std::size_t pos = line.find("nolint");
    if (pos == std::string::npos) continue;
    std::set<std::string> rules;
    std::size_t after = pos + 6;
    if (after < line.size() && line[after] == '(') {
      std::size_t close = line.find(')', after);
      if (close != std::string::npos) {
        for (std::string_view rule : util::split(std::string_view(line).substr(after + 1, close - after - 1), ',')) {
          rule = trim(rule);
          if (!rule.empty()) rules.emplace(rule);
        }
      }
    }
    map.by_line[static_cast<int>(i) + 1] = std::move(rules);
  }
  return map;
}

}  // namespace

LintResult lint_guest_source(std::string_view source, const std::string& file,
                             DiagEngine& diags, const LintOptions& options) {
  LintResult result;
  std::vector<std::string> lines = split_lines(source);
  NolintMap nolint = scan_nolint(lines);

  auto report = [&](Severity severity, std::string rule, std::string message, int line) {
    if (line > 0 && nolint.suppressed(line, rule)) return;
    diags.report(severity, std::move(rule), std::move(message), SourceLoc{file, line, 0});
  };

  // 1. Pragma extraction (the production filter validates syntax and
  //    breakpoint placement; a failure is exactly the class of defect the
  //    paper's filter tool exists to catch).
  cosim::FilteredSource filtered;
  try {
    filtered = cosim::filter_pragmas(source);
  } catch (const util::RuntimeError& e) {
    auto [line, message] = split_line_prefix(e.what());
    report(Severity::Error, "lint.pragma", message, line);
    return result;
  }
  result.bindings = filtered.bindings;

  // 2. Binding-level checks: duplicates, conflicts, unknown ports.
  for (std::size_t i = 0; i < result.bindings.size(); ++i) {
    const cosim::PragmaBinding& b = result.bindings[i];
    for (std::size_t j = 0; j < i; ++j) {
      const cosim::PragmaBinding& prev = result.bindings[j];
      if (prev.port != b.port) continue;
      if (prev.direction == b.direction) {
        report(Severity::Error, "lint.duplicate-binding",
               "port '" + b.port + "' already bound by the pragma on line " +
                   std::to_string(prev.pragma_line),
               b.pragma_line);
      } else {
        report(Severity::Error, "lint.conflicting-binding",
               "port '" + b.port + "' bound as both iss_in and iss_out (see line " +
                   std::to_string(prev.pragma_line) + ")",
               b.pragma_line);
      }
      break;
    }
    if (!options.known_ports.empty() &&
        std::find(options.known_ports.begin(), options.known_ports.end(), b.port) ==
            options.known_ports.end()) {
      report(Severity::Error, "lint.unknown-port",
             "pragma names iss port '" + b.port + "' which is not in the design port list",
             b.pragma_line);
    }
  }

  // 3. Assembly. A line-preserving variant of the filtered source (pragmas
  //    blanked in place, synthetic breakpoint labels prepended to their
  //    target lines) keeps assembler line numbers aligned with the original
  //    file; it lays out to the same image as the production filter output.
  std::string preserving;
  {
    std::vector<std::string> transformed = lines;
    for (std::string& line : transformed) {
      if (is_pragma_line(line)) line.clear();
    }
    for (const cosim::PragmaBinding& b : result.bindings) {
      std::string& target = transformed[static_cast<std::size_t>(b.breakpoint_line) - 1];
      target = b.label + ": " + target;
    }
    for (const std::string& line : transformed) {
      preserving += line;
      preserving += '\n';
    }
  }
  {
    iss::AssembleResult assembled = iss::assemble_all(preserving, options.base);
    for (const iss::AsmError& e : assembled.errors) {
      report(Severity::Error, e.label_redefined ? "lint.label-redefined" : "lint.asm", e.message,
             e.line);
    }
    result.program = std::move(assembled.program);
    result.assembled = assembled.errors.empty();
  }

  // 4. Per-binding data-flow checks.
  for (const cosim::PragmaBinding& b : result.bindings) {
    if (result.assembled && !result.program.has_symbol(b.variable)) {
      report(Severity::Error, "lint.variable-undefined",
             "variable '" + b.variable + "' bound to port '" + b.port +
                 "' is not defined by the program",
             b.pragma_line);
    }

    bool referenced = false;
    for (const std::string& line : lines) {
      if (is_pragma_line(line)) continue;
      if (references_identifier(strip_labels(code_part(line)), b.variable)) {
        referenced = true;
        break;
      }
    }
    if (!referenced) {
      report(Severity::Warning, "lint.variable-unused",
             "variable '" + b.variable + "' bound to port '" + b.port +
                 "' is never read or written by an instruction; the binding cannot carry data",
             b.pragma_line);
    }

    const std::string mnemonic = mnemonic_of(lines[static_cast<std::size_t>(b.statement_line) - 1]);
    if (b.direction == cosim::BindDirection::IssToSc) {
      if (mnemonic != "sw" && mnemonic != "sh" && mnemonic != "sb") {
        report(Severity::Warning, "lint.bind-direction",
               "iss_in pragma for '" + b.variable + "' annotates '" + mnemonic +
                   "', not a store; the guest must write the variable before the breakpoint",
               b.statement_line);
      }
    } else {
      if (mnemonic != "lw" && mnemonic != "lh" && mnemonic != "lb" && mnemonic != "lhu" &&
          mnemonic != "lbu") {
        report(Severity::Warning, "lint.bind-direction",
               "iss_out pragma for '" + b.variable + "' annotates '" + mnemonic +
                   "', not a load; the injected value would never be consumed",
               b.statement_line);
      }
    }
  }

  // 5. Flow-sensitive NL3xx rules over the assembled program's CFG.
  if (result.assembled && options.flow) {
    FlowStats flow_stats;
    check_flow(
        result.program, result.bindings,
        FlowOptions{options.mem_size, options.interproc, options.context_k},
        [&](Severity severity, std::string rule, std::string message, int line) {
          report(severity, std::move(rule), std::move(message), line);
        },
        &result.summaries_json, &flow_stats);
    result.stats.functions = flow_stats.functions;
    result.stats.clones = flow_stats.clones;
    result.stats.havoc_summaries = flow_stats.havoc_summaries;
    result.stats.narrowing_iterations = flow_stats.narrowing_iterations;
    result.stats.clone_overflows = flow_stats.clone_overflows;
  }

  return result;
}

}  // namespace nisc::analysis
