// Driver-Kernel wire-protocol frame validator (paper §4.2).
//
// Validates a buffer holding zero or more concatenated framed messages
// ({u32 packet_size, body}) as produced by ipc::encode_message. Each frame
// body is decoded with ipc::decode_message_body and re-encoded; a decode
// failure or a round-trip mismatch is a defect in the sender.
//
// Rules:
//  * frame.truncated (error): buffer ends inside a size field or a body.
//  * frame.oversized (error): packet_size exceeds ipc::kMaxMessageBody
//    (corrupt size field; scanning stops — resynchronisation is hopeless).
//  * frame.malformed (error): body fails to decode (bad type, truncated
//    item, trailing bytes).
//  * frame.roundtrip (warning): body decodes but re-encoding differs —
//    the frame is readable but not canonical.
//
// The reported SourceLoc uses `file` for the buffer's origin and `line` for
// the 1-based frame ordinal within it.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "analysis/diag.hpp"

namespace nisc::analysis {

/// Validates every frame in `buffer`; returns the number of well-formed
/// frames (decoded and canonical).
std::size_t check_frames(std::span<const std::uint8_t> buffer, DiagEngine& diags,
                         const std::string& origin = "<frames>");

}  // namespace nisc::analysis
