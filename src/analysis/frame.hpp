// Wire-protocol frame validator (paper §4.2).
//
// Validates a buffer holding zero or more concatenated framed messages in
// one of two dialects:
//  * DriverKernel: {u32 packet_size, body} as produced by
//    ipc::encode_message. Each body is decoded with ipc::decode_message_body
//    and re-encoded; a decode failure or a round-trip mismatch is a defect
//    in the sender.
//  * Worker: {u32 body_len, u8 op, u64 seq, payload} as produced by
//    cosim::send_frame. Fixed-payload ops may carry the optional 12-byte
//    FTID trace-id trailer, which is recognised by length + closing magic
//    and is NOT a defect (postmortem captures of traced sessions must not
//    false-positive on it).
//
// Rules:
//  * frame.truncated (error): buffer ends inside a size field or a body.
//  * frame.oversized (error): the size field exceeds the dialect's limit
//    (corrupt size field; scanning stops — resynchronisation is hopeless).
//  * frame.malformed (error): body fails to decode (bad type / unknown op,
//    truncated item, payload length off for a fixed-payload op).
//  * frame.roundtrip (warning): body decodes but re-encoding differs —
//    the frame is readable but not canonical (DriverKernel only).
//
// The reported SourceLoc uses `file` for the buffer's origin and `line` for
// the 1-based frame ordinal within it.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "analysis/diag.hpp"

namespace nisc::analysis {

/// Which framing dialect check_frames validates.
enum class FrameDialect : std::uint8_t {
  DriverKernel,  ///< ipc::encode_message frames
  Worker,        ///< cosim::send_frame frames (supervisor <-> worker wire)
};

/// Validates every frame in `buffer`; returns the number of well-formed
/// frames (decoded and canonical).
std::size_t check_frames(std::span<const std::uint8_t> buffer, DiagEngine& diags,
                         const std::string& origin = "<frames>",
                         FrameDialect dialect = FrameDialect::DriverKernel);

}  // namespace nisc::analysis
