// Call graph over the guest CFG: which functions exist, who calls whom, and
// in what order summaries must be computed.
//
// Functions are discovered from the CFG's call targets plus the program
// entry; a function's body is every block reachable from its entry over the
// intra-procedural edge view (calls are stepped over via their CallFall
// summary edge). Direct calls resolve to exactly one callee; indirect calls
// resolve to the CFG's conservative target set when the program took the
// address of at least one code label, and are marked *unresolved* otherwise
// — an unresolved site gets the havoc summary (summary.hpp), never a guess.
//
// Strongly connected components are emitted bottom-up (callees before
// callers), which is exactly the order the summary pass consumes: when a
// function's summary is computed, every callee outside its own SCC already
// has one, and SCC-internal recursion is iterated to a widened fixpoint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "iss/program.hpp"

namespace nisc::analysis {

/// One call instruction (jal rd!=x0 or jalr rd!=x0).
struct CallSite {
  std::uint32_t addr = 0;             ///< address of the call instruction
  int line = 0;                       ///< 1-based source line, 0 when unknown
  std::size_t caller = 0;             ///< index into CallGraph::functions()
  std::vector<std::size_t> callees;   ///< possible callees, same index space
  bool indirect = false;              ///< jalr through a register
  bool resolved = true;               ///< false: callee set is a fallback guess
};

/// One discovered function.
struct Function {
  std::uint32_t entry_addr = 0;
  std::size_t entry_block = Cfg::npos;
  std::string name;                       ///< symbol at the entry, or "fn_<hex>"
  std::vector<std::size_t> blocks;        ///< body blocks (intra-procedural reach)
  std::vector<std::size_t> call_sites;    ///< indices into CallGraph::sites()
  std::size_t scc = 0;                    ///< index into CallGraph::sccs()
};

class CallGraph {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  static CallGraph build(const Cfg& cfg, const iss::Program& program);

  const std::vector<Function>& functions() const noexcept { return functions_; }
  const std::vector<CallSite>& sites() const noexcept { return sites_; }

  /// SCCs of the call relation, bottom-up: every call from sccs()[i] lands
  /// in sccs()[j] with j <= i (j == i only for recursion).
  const std::vector<std::vector<std::size_t>>& sccs() const noexcept { return sccs_; }

  /// True when the SCC has more than one member or a self-call.
  bool scc_is_recursive(std::size_t scc) const noexcept;

  /// Function whose entry is the program entry point; npos when the entry
  /// address is not code.
  std::size_t entry_function() const noexcept { return entry_function_; }

  /// Function whose entry address is `addr`; npos when none.
  std::size_t function_at(std::uint32_t addr) const noexcept;

 private:
  std::vector<Function> functions_;
  std::vector<CallSite> sites_;
  std::vector<std::vector<std::size_t>> sccs_;
  std::size_t entry_function_ = npos;
};

}  // namespace nisc::analysis
