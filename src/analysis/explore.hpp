// Explicit-state model checker for the protocol automata (DESIGN.md §11).
//
// Composes a model's two endpoint automata with a bounded-channel
// environment (per channel, one FIFO each way) and exhaustively explores
// every interleaving by breadth-first search over the global state space
// (a_state, b_state, queue contents, channel liveness). The environment can
// optionally lose, duplicate, or corrupt in-flight messages and cut
// channels, mirroring what ipc::FaultyChannel does to real wires.
//
// Reported violations (the static half of the NL4xx family):
//   NL410 Deadlock              no successor, not accepting, queues empty
//   NL411 UnspecifiedReception  no successor with a message stuck in a queue
//   NL412 StuckProgress         no accepting state reachable any more
//   NL413 DuplicateEffect       a guest-visible effect applied twice after a
//                               crash/respawn recovery (dedup failure)
//   NL414 LostAck               endpoint B waits forever for the ack of an
//                               effect that was applied before a crash
// BFS order makes every counterexample trace minimal for its violation.
//
// The crash environment (EnvOptions::crashing) models SIGKILL-at-any-point
// plus supervised respawn for models with a CrashSpec: endpoint B jumps back
// to its last checkpoint (or its restart state), every queue is flushed, and
// the environment re-delivers the interrupts recorded for already-applied
// but not-yet-retired effects — mirroring Supervisor::recover()'s irq-log
// replay. Effect/checkpoint bookkeeping rides along in the global state, so
// exploration proves the seq-dedup/replay automaton loses or duplicates no
// effect under *every* kill interleaving, not just sampled kill points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diag.hpp"
#include "analysis/protocol.hpp"
#include "ipc/fault.hpp"

namespace nisc::analysis {

/// The channel environment the endpoints are composed with.
struct EnvOptions {
  /// Messages in flight per channel per direction before a send blocks.
  std::size_t channel_capacity = 2;
  bool lossy = false;          ///< a sent message may vanish (Drop)
  bool duplicating = false;    ///< a sent message may arrive twice (Duplicate)
  bool corrupting = false;     ///< a sent message may arrive as garbage
                               ///  (CorruptByte/Truncate at the symbol level)
  bool disconnecting = false;  ///< a channel may be cut, flushing its queues
  /// Endpoint B may be killed and respawned at any point (requires the
  /// model to carry a CrashSpec; ignored otherwise). Kept out of faulty():
  /// crash-consistency is a separate proof from wire-fault tolerance.
  bool crashing = false;
  /// Crash/respawn cycles per run under `crashing` (2 covers crash-during-
  /// recovery double faults without blowing up the state space).
  std::size_t max_crashes = 2;

  /// All four adversarial wire behaviors on (the `--faults` environment).
  static EnvOptions faulty();
};

struct ExploreLimits {
  /// Exploration stops (report.complete = false) beyond this many states.
  std::size_t max_states = 200000;
  /// Reported counterexamples per violation kind (deduplicated by final
  /// state and fault attribution; BFS order keeps the shallowest ones).
  std::size_t max_violations_per_kind = 4;
};

enum class ViolationKind : std::uint8_t {
  Deadlock,
  UnspecifiedReception,
  StuckProgress,
  DuplicateEffect,
  LostAck,
};

const char* violation_kind_name(ViolationKind kind) noexcept;
/// The NL41x rule id for a violation kind.
const char* violation_rule(ViolationKind kind) noexcept;

/// One step of a counterexample trace.
struct TraceStep {
  char endpoint = 'A';  ///< 'A', 'B', or 'E' (environment)
  ActionKind kind = ActionKind::Internal;
  int symbol = -1;
  int channel = -1;
  /// What the environment did to a Send ('E' steps use Cut or Crashed).
  enum class Effect : std::uint8_t { Normal, Lost, Duplicated, Corrupted, Cut, Crashed };
  Effect effect = Effect::Normal;
  std::string text;  ///< human-readable rendering
};

struct Counterexample {
  ViolationKind kind = ViolationKind::Deadlock;
  std::vector<TraceStep> trace;  ///< minimal path from the initial state
  std::string state;             ///< rendering of the violating global state
};

struct ExploreReport {
  std::string model;
  EnvOptions env;
  std::size_t states = 0;
  std::size_t edges = 0;
  /// False when ExploreLimits::max_states stopped the search early.
  bool complete = true;
  std::vector<Counterexample> violations;

  bool clean() const noexcept { return complete && violations.empty(); }
};

/// Exhaustive BFS of the composed system. Violations are deduplicated by
/// (kind, endpoint states, queue contents, fault attribution) and capped per
/// kind; the survivors are minimal traces by BFS order.
ExploreReport explore(const ProtocolModel& model, const EnvOptions& env = {},
                      const ExploreLimits& limits = {});

/// Reports each violation as an NL41x diagnostic (error), one per
/// counterexample, with the trace in the message.
void report_violations(const ExploreReport& report, DiagEngine& diags);

/// Multi-line human rendering of the report (summary + traces).
std::string render_text(const ExploreReport& report);

/// JSON object fragment (no surrounding braces' siblings) for embedding in
/// cosim_lint --json output: {"model":...,"states":N,...,"violations":[...]}.
std::string render_json(const ExploreReport& report);

/// A FaultPlan reproducing a counterexample's environment faults as
/// `endpoint`-side send faults ('A' or 'B'): the trace's nth Send by that
/// endpoint maps to drop_send/duplicate_send/corrupt_send(nth). `complete`
/// is false when the trace also contains faults the plan cannot express
/// (the other endpoint's sends, channel cuts).
struct FaultPlanResult {
  ipc::FaultPlan plan;
  bool complete = true;
};

FaultPlanResult fault_plan_for(const Counterexample& ce, char endpoint);

}  // namespace nisc::analysis
