#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace nisc::obs {
namespace {

std::atomic<bool>& exists_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

void append_json_escaped(std::ostream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c; break;
    }
  }
}

}  // namespace

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += bucket_count(i);
    if (static_cast<double>(seen) >= target) {
      return i < bounds_.size() ? bounds_[i] : bounds_.empty() ? 0 : bounds_.back();
    }
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

std::vector<std::uint64_t> default_us_bounds() {
  return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000, 100000};
}

std::vector<std::uint64_t> default_bytes_bounds() {
  return {1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144};
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  exists_flag().store(true, std::memory_order_release);
  return registry;
}

bool MetricsRegistry::exists() noexcept {
  return exists_flag().load(std::memory_order_acquire);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           std::unique_ptr<Counter>(new Counter(std::string(name)))).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name),
                         std::unique_ptr<Gauge>(new Gauge(std::string(name)))).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    util::require(!bounds.empty(), "histogram: empty bucket bounds for " + std::string(name));
    util::require(std::is_sorted(bounds.begin(), bounds.end()) &&
                      std::adjacent_find(bounds.begin(), bounds.end()) == bounds.end(),
                  "histogram: bounds must be strictly increasing for " + std::string(name));
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(std::string(name), std::move(bounds))))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = name;
    hv.bounds = h->bounds();
    hv.buckets.resize(h->bucket_slots());
    for (std::size_t i = 0; i < hv.buckets.size(); ++i) hv.buckets[i] = h->bucket_count(i);
    hv.count = h->count();
    hv.sum = h->sum();
    hv.p50 = h->quantile(0.5);
    hv.p90 = h->quantile(0.9);
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

std::string MetricsRegistry::render_json() const { return render_snapshot_json(snapshot()); }

void MetricsRegistry::reset() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->value_.store(0, std::memory_order_relaxed);
  for (auto& [name, g] : gauges_) g->value_.store(0, std::memory_order_relaxed);
  for (auto& [name, h] : histograms_) {
    for (auto& b : h->buckets_) b.store(0, std::memory_order_relaxed);
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
  }
}

std::string render_snapshot_json(const MetricsSnapshot& snap) {
  std::ostringstream out;
  out << "{\"schema\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out << ',';
    first = false;
    out << '"';
    append_json_escaped(out, name);
    out << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out << ',';
    first = false;
    out << '"';
    append_json_escaped(out, name);
    out << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& hv : snap.histograms) {
    if (!first) out << ',';
    first = false;
    out << '"';
    append_json_escaped(out, hv.name);
    out << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < hv.bounds.size(); ++i) {
      if (i) out << ',';
      out << hv.bounds[i];
    }
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < hv.buckets.size(); ++i) {
      if (i) out << ',';
      out << hv.buckets[i];
    }
    out << "],\"count\":" << hv.count << ",\"sum\":" << hv.sum << ",\"p50\":" << hv.p50
        << ",\"p90\":" << hv.p90 << '}';
  }
  out << "}}";
  return out.str();
}

}  // namespace nisc::obs
