#include "obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

namespace nisc::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

namespace {

struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  const char* arg_name = nullptr;
  std::uint64_t arg_value = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t sim_ps = kNoSimTime;
  char phase = 'i';
};

/// One thread's bounded event ring. Owned jointly by the thread (so the hot
/// path is lock-free) and the global registry (so export can read rings of
/// exited threads).
struct ThreadRing {
  explicit ThreadRing(std::size_t capacity, std::uint32_t tid)
      : events(capacity), tid(tid) {}

  std::vector<TraceEvent> events;
  std::size_t next = 0;       ///< write cursor
  std::uint64_t recorded = 0; ///< total events ever recorded
  std::uint32_t tid = 0;

  void push(const TraceEvent& e) noexcept {
    events[next] = e;
    next = (next + 1) % events.size();
    ++recorded;
  }

  /// Events in chronological order (unwraps the ring).
  std::vector<TraceEvent> ordered() const {
    std::vector<TraceEvent> out;
    const std::size_t n = recorded < events.size() ? static_cast<std::size_t>(recorded)
                                                   : events.size();
    out.reserve(n);
    const std::size_t start = recorded < events.size() ? 0 : next;
    for (std::size_t i = 0; i < n; ++i) out.push_back(events[(start + i) % events.size()]);
    return out;
  }
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::size_t ring_capacity;
  std::uint32_t next_tid = 1;
  std::set<std::string, std::less<>> interned;

  TraceState() {
    ring_capacity = 65536;
    if (const char* env = std::getenv("NISC_TRACE_BUF")) {
      char* end = nullptr;
      unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && v >= 16) ring_capacity = static_cast<std::size_t>(v);
    }
  }
};

TraceState& state() {
  static TraceState* s = new TraceState();  // never destroyed: rings may outlive main
  return *s;
}

thread_local std::shared_ptr<ThreadRing> t_ring;
thread_local std::uint64_t t_sim_ps = kNoSimTime;

ThreadRing& thread_ring() {
  if (!t_ring) {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    t_ring = std::make_shared<ThreadRing>(s.ring_capacity, s.next_tid++);
    s.rings.push_back(t_ring);
  }
  return *t_ring;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_escaped(std::ostream& out, const char* s) {
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out << '\\';
    out << *s;
  }
}

void append_event_json(std::ostream& out, const TraceEvent& e, std::uint32_t tid, bool& first) {
  if (!first) out << ",\n";
  first = false;
  // Chrome trace ts unit is microseconds; keep ns resolution as a fraction.
  const std::uint64_t us = e.ts_ns / 1000;
  const std::uint64_t frac = e.ts_ns % 1000;
  out << "{\"name\":\"";
  append_escaped(out, e.name);
  out << "\",\"cat\":\"";
  append_escaped(out, e.cat);
  out << "\",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << us << '.';
  out << static_cast<char>('0' + frac / 100) << static_cast<char>('0' + (frac / 10) % 10)
      << static_cast<char>('0' + frac % 10);
  if (e.phase == 'i') out << ",\"s\":\"t\"";
  const bool has_sim = e.sim_ps != kNoSimTime;
  const bool has_arg = e.arg_name != nullptr;
  if (has_sim || has_arg) {
    out << ",\"args\":{";
    if (has_sim) out << "\"sim_ps\":" << e.sim_ps;
    if (has_arg) {
      if (has_sim) out << ',';
      out << '"';
      append_escaped(out, e.arg_name);
      out << "\":" << e.arg_value;
    }
    out << '}';
  }
  out << '}';
}

}  // namespace

void enable_tracing(std::size_t ring_capacity) {
  TraceState& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (ring_capacity >= 16) s.ring_capacity = ring_capacity;
  }
  detail::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void disable_tracing() noexcept {
  detail::g_tracing_enabled.store(false, std::memory_order_relaxed);
}

void clear_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  // Rings of exited threads (registry holds the only reference) are
  // dropped; the caller's own ring is emptied in place. Rings other live
  // threads are still writing cannot be reset safely and are left alone.
  std::erase_if(s.rings, [](const std::shared_ptr<ThreadRing>& r) { return r.use_count() == 1; });
  if (t_ring) {
    t_ring->next = 0;
    t_ring->recorded = 0;
  }
}

void set_thread_sim_time_ps(std::uint64_t ps) noexcept { t_sim_ps = ps; }

std::uint64_t thread_sim_time_ps() noexcept { return t_sim_ps; }

const char* intern(std::string_view s) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.interned.find(s);
  if (it == st.interned.end()) it = st.interned.emplace(s).first;
  return it->c_str();
}

void emit(char phase, const char* name, const char* category,
          const char* arg_name, std::uint64_t arg_value) noexcept {
  TraceEvent e;
  e.name = name;
  e.cat = category;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  e.ts_ns = now_ns();
  e.sim_ps = t_sim_ps;
  e.phase = phase;
  thread_ring().push(e);
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t n = 0;
  for (const auto& ring : s.rings) {
    n += ring->recorded < ring->events.size() ? static_cast<std::size_t>(ring->recorded)
                                              : ring->events.size();
  }
  return n;
}

std::uint64_t trace_dropped_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t n = 0;
  for (const auto& ring : s.rings) {
    if (ring->recorded > ring->events.size()) n += ring->recorded - ring->events.size();
  }
  return n;
}

std::string chrome_trace_json() {
  // Snapshot the ring list; rings themselves are read without a lock (the
  // caller is expected to export after disable_tracing(), or to tolerate a
  // torn tail — each event slot is written before `next` advances).
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    rings = s.rings;
  }
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  for (const auto& ring : rings) {
    std::vector<TraceEvent> events = ring->ordered();
    // Repair pairs broken by ring eviction: drop 'E' events whose 'B' was
    // evicted; close dangling 'B' events at the last seen timestamp.
    std::vector<std::size_t> stack;
    std::vector<bool> keep(events.size(), true);
    std::uint64_t last_ts = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      last_ts = std::max(last_ts, events[i].ts_ns);
      if (events[i].phase == 'B') {
        stack.push_back(i);
      } else if (events[i].phase == 'E') {
        if (stack.empty()) {
          keep[i] = false;  // begin evicted
        } else {
          stack.pop_back();
        }
      }
    }
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (keep[i]) append_event_json(out, events[i], ring->tid, first);
    }
    // Dangling begins: synthesize ends, innermost first.
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      TraceEvent closer = events[*it];
      closer.phase = 'E';
      closer.ts_ns = last_ts;
      closer.arg_name = nullptr;
      append_event_json(out, closer, ring->tid, first);
    }
  }
  out << "\n]}\n";
  return out.str();
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << chrome_trace_json();
  return static_cast<bool>(out);
}

}  // namespace nisc::obs
