#include "obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace nisc::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

namespace {

/// One ring slot. Every field is individually atomic so an export taken
/// while the owning thread is still recording reads without data races; a
/// slot overwritten mid-read may mix two events (each field is internally
/// consistent), which the exporter's repair pass tolerates. A null name
/// marks a slot that was never written.
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> cat{nullptr};
  std::atomic<const char*> arg_name{nullptr};
  std::atomic<std::uint64_t> arg_value{0};
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> sim_ps{kNoSimTime};
  std::atomic<std::uint64_t> flow_id{0};
  std::atomic<char> phase{'i'};
};

/// Lazily bound eviction counter: the registry is only touched once the
/// first event is actually evicted (keeping the "inert until first touch"
/// overhead guarantee for traced-but-not-overflowing processes).
std::atomic<Counter*> g_dropped_counter{nullptr};

void count_dropped_event() noexcept {
  Counter* c = g_dropped_counter.load(std::memory_order_acquire);
  if (c == nullptr) {
    c = &counter("trace.dropped_events");
    g_dropped_counter.store(c, std::memory_order_release);
  }
  c->add(1);
}

/// One thread's bounded event ring. Owned jointly by the thread (so the hot
/// path is lock-free) and the global registry (so export can read rings of
/// exited threads).
struct ThreadRing {
  explicit ThreadRing(std::size_t capacity, std::uint32_t tid)
      : slots(capacity), tid(tid) {}

  std::vector<Slot> slots;
  std::atomic<std::size_t> next{0};       ///< write cursor
  std::atomic<std::uint64_t> recorded{0}; ///< total events ever recorded
  std::uint32_t tid = 0;

  void push(char phase, const char* name, const char* cat, const char* arg_name,
            std::uint64_t arg_value, std::uint64_t ts_ns, std::uint64_t sim_ps,
            std::uint64_t flow_id) noexcept {
    const std::size_t i = next.load(std::memory_order_relaxed);
    Slot& s = slots[i];
    s.name.store(name, std::memory_order_relaxed);
    s.cat.store(cat, std::memory_order_relaxed);
    s.arg_name.store(arg_name, std::memory_order_relaxed);
    s.arg_value.store(arg_value, std::memory_order_relaxed);
    s.ts_ns.store(ts_ns, std::memory_order_relaxed);
    s.sim_ps.store(sim_ps, std::memory_order_relaxed);
    s.flow_id.store(flow_id, std::memory_order_relaxed);
    s.phase.store(phase, std::memory_order_relaxed);
    next.store((i + 1) % slots.size(), std::memory_order_relaxed);
    const std::uint64_t total = recorded.load(std::memory_order_relaxed) + 1;
    recorded.store(total, std::memory_order_release);
    if (total > slots.size()) count_dropped_event();
  }

  std::uint64_t buffered() const noexcept {
    const std::uint64_t total = recorded.load(std::memory_order_acquire);
    return total < slots.size() ? total : slots.size();
  }

  std::uint64_t dropped() const noexcept {
    const std::uint64_t total = recorded.load(std::memory_order_acquire);
    return total > slots.size() ? total - slots.size() : 0;
  }
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::size_t ring_capacity;
  std::uint32_t next_tid = 1;
  std::set<std::string, std::less<>> interned;

  TraceState() {
    ring_capacity = 65536;
    if (const char* env = std::getenv("NISC_TRACE_BUF")) {
      char* end = nullptr;
      unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && v >= 16) ring_capacity = static_cast<std::size_t>(v);
    }
  }
};

TraceState& state() {
  static TraceState* s = new TraceState();  // never destroyed: rings may outlive main
  return *s;
}

thread_local std::shared_ptr<ThreadRing> t_ring;
thread_local std::uint64_t t_sim_ps = kNoSimTime;

ThreadRing& thread_ring() {
  if (!t_ring) {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    t_ring = std::make_shared<ThreadRing>(s.ring_capacity, s.next_tid++);
    s.rings.push_back(t_ring);
  }
  return *t_ring;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_escaped(std::ostream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

bool is_flow_phase(char phase) noexcept { return phase == 's' || phase == 't' || phase == 'f'; }

void append_event_json(std::ostream& out, const TraceSnapshot::Event& e, std::uint32_t pid,
                       std::uint32_t tid, std::int64_t offset_ns, bool& first) {
  if (!first) out << ",\n";
  first = false;
  // Rebase onto the merge target's clock; clamp below at zero (an offset
  // larger than the earliest timestamp would go negative, which Perfetto
  // rejects).
  const std::int64_t shifted = static_cast<std::int64_t>(e.ts_ns) + offset_ns;
  const std::uint64_t ts_ns = shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0;
  // Chrome trace ts unit is microseconds; keep ns resolution as a fraction.
  const std::uint64_t us = ts_ns / 1000;
  const std::uint64_t frac = ts_ns % 1000;
  out << "{\"name\":\"";
  append_escaped(out, e.name);
  out << "\",\"cat\":\"";
  append_escaped(out, e.cat);
  out << "\",\"ph\":\"" << e.phase << "\",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"ts\":" << us << '.';
  out << static_cast<char>('0' + frac / 100) << static_cast<char>('0' + (frac / 10) % 10)
      << static_cast<char>('0' + frac % 10);
  if (e.phase == 'i') out << ",\"s\":\"t\"";
  if (is_flow_phase(e.phase)) {
    out << ",\"id\":\"0x" << std::hex << e.flow_id << std::dec << '"';
    if (e.phase == 'f') out << ",\"bp\":\"e\"";
  }
  const bool has_sim = e.sim_ps != kNoSimTime;
  const bool has_arg = !e.arg_name.empty();
  if (has_sim || has_arg) {
    out << ",\"args\":{";
    if (has_sim) out << "\"sim_ps\":" << e.sim_ps;
    if (has_arg) {
      if (has_sim) out << ',';
      out << '"';
      append_escaped(out, e.arg_name);
      out << "\":" << e.arg_value;
    }
    out << '}';
  }
  out << '}';
}

void append_metadata_json(std::ostream& out, const char* meta, std::uint32_t pid,
                          const std::string& value, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":\"" << meta << "\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":0,\"ts\":0,\"args\":{\"name\":\"";
  append_escaped(out, value);
  out << "\"}}";
}

// -- snapshot byte codec ----------------------------------------------------

inline constexpr std::uint32_t kSnapshotMagic = 0x4352544Eu;  // "NTRC"
inline constexpr std::uint32_t kSnapshotVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

struct SnapshotReader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > data.size()) {
      throw util::RuntimeError("truncated trace snapshot (need " + std::to_string(n) +
                               " bytes, have " + std::to_string(data.size() - pos) + ")");
    }
  }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = static_cast<std::uint32_t>(data[pos]) | (data[pos + 1] << 8) |
                            (data[pos + 2] << 16) |
                            (static_cast<std::uint32_t>(data[pos + 3]) << 24);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string out(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return out;
  }
};

}  // namespace

void enable_tracing(std::size_t ring_capacity) {
  TraceState& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (ring_capacity >= 16) s.ring_capacity = ring_capacity;
  }
  detail::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void disable_tracing() noexcept {
  detail::g_tracing_enabled.store(false, std::memory_order_relaxed);
}

void clear_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  // Rings of exited threads (registry holds the only reference) are
  // dropped; the caller's own ring is emptied in place. Rings other live
  // threads are still writing cannot be reset safely and are left alone.
  std::erase_if(s.rings, [](const std::shared_ptr<ThreadRing>& r) { return r.use_count() == 1; });
  if (t_ring) {
    t_ring->next.store(0, std::memory_order_relaxed);
    t_ring->recorded.store(0, std::memory_order_release);
  }
}

void set_thread_sim_time_ps(std::uint64_t ps) noexcept { t_sim_ps = ps; }

std::uint64_t thread_sim_time_ps() noexcept { return t_sim_ps; }

const char* intern(std::string_view s) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.interned.find(s);
  if (it == st.interned.end()) it = st.interned.emplace(s).first;
  return it->c_str();
}

void emit(char phase, const char* name, const char* category,
          const char* arg_name, std::uint64_t arg_value) noexcept {
  thread_ring().push(phase, name, category, arg_name, arg_value, now_ns(), t_sim_ps, 0);
}

void emit_flow(char phase, const char* name, const char* category,
               std::uint64_t flow_id) noexcept {
  thread_ring().push(phase, name, category, nullptr, 0, now_ns(), t_sim_ps, flow_id);
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t n = 0;
  for (const auto& ring : s.rings) n += static_cast<std::size_t>(ring->buffered());
  return n;
}

std::uint64_t trace_dropped_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t n = 0;
  for (const auto& ring : s.rings) n += ring->dropped();
  return n;
}

TraceSnapshot take_trace_snapshot() {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    rings = s.rings;
  }
  TraceSnapshot snapshot;
  snapshot.threads.reserve(rings.size());
  for (const auto& ring : rings) {
    TraceSnapshot::Thread thread;
    thread.tid = ring->tid;
    thread.dropped = ring->dropped();
    const std::uint64_t total = ring->recorded.load(std::memory_order_acquire);
    const std::size_t capacity = ring->slots.size();
    const std::size_t n =
        total < capacity ? static_cast<std::size_t>(total) : capacity;
    const std::size_t start =
        total < capacity ? 0 : ring->next.load(std::memory_order_relaxed);
    thread.events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Slot& s = ring->slots[(start + i) % capacity];
      const char* name = s.name.load(std::memory_order_relaxed);
      const char* cat = s.cat.load(std::memory_order_relaxed);
      if (name == nullptr || cat == nullptr) continue;  // never written
      TraceSnapshot::Event e;
      e.name = name;
      e.cat = cat;
      if (const char* an = s.arg_name.load(std::memory_order_relaxed)) e.arg_name = an;
      e.arg_value = s.arg_value.load(std::memory_order_relaxed);
      e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      e.sim_ps = s.sim_ps.load(std::memory_order_relaxed);
      e.flow_id = s.flow_id.load(std::memory_order_relaxed);
      e.phase = s.phase.load(std::memory_order_relaxed);
      thread.events.push_back(std::move(e));
    }
    snapshot.threads.push_back(std::move(thread));
  }
  return snapshot;
}

std::vector<std::uint8_t> encode_trace_snapshot(const TraceSnapshot& snapshot) {
  std::vector<std::uint8_t> out;
  put_u32(out, kSnapshotMagic);
  put_u32(out, kSnapshotVersion);
  put_u32(out, static_cast<std::uint32_t>(snapshot.threads.size()));
  for (const TraceSnapshot::Thread& thread : snapshot.threads) {
    put_u32(out, thread.tid);
    put_u64(out, thread.dropped);
    put_u32(out, static_cast<std::uint32_t>(thread.events.size()));
    for (const TraceSnapshot::Event& e : thread.events) {
      out.push_back(static_cast<std::uint8_t>(e.phase));
      put_u64(out, e.ts_ns);
      put_u64(out, e.sim_ps);
      put_u64(out, e.arg_value);
      put_u64(out, e.flow_id);
      put_str(out, e.name);
      put_str(out, e.cat);
      put_str(out, e.arg_name);
    }
  }
  return out;
}

TraceSnapshot decode_trace_snapshot(std::span<const std::uint8_t> bytes) {
  SnapshotReader r{bytes};
  if (r.u32() != kSnapshotMagic) throw util::RuntimeError("trace snapshot: bad magic");
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    throw util::RuntimeError("trace snapshot: unsupported version " + std::to_string(version));
  }
  TraceSnapshot snapshot;
  const std::uint32_t threads = r.u32();
  snapshot.threads.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    TraceSnapshot::Thread thread;
    thread.tid = r.u32();
    thread.dropped = r.u64();
    const std::uint32_t events = r.u32();
    thread.events.reserve(events);
    for (std::uint32_t i = 0; i < events; ++i) {
      TraceSnapshot::Event e;
      r.need(1);
      e.phase = static_cast<char>(r.data[r.pos++]);
      e.ts_ns = r.u64();
      e.sim_ps = r.u64();
      e.arg_value = r.u64();
      e.flow_id = r.u64();
      e.name = r.str();
      e.cat = r.str();
      e.arg_name = r.str();
      thread.events.push_back(std::move(e));
    }
    snapshot.threads.push_back(std::move(thread));
  }
  return snapshot;
}

std::string chrome_trace_json(std::span<const ProcessTrace> processes) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  for (const ProcessTrace& process : processes) {
    if (!process.label.empty()) {
      append_metadata_json(out, "process_name", process.pid, process.label, first);
    }
    for (const TraceSnapshot::Thread& thread : process.snapshot.threads) {
      const std::vector<TraceSnapshot::Event>& events = thread.events;
      // Repair pairs broken by ring eviction: drop 'E' events whose 'B' was
      // evicted; close dangling 'B' events at the last seen timestamp.
      std::vector<std::size_t> stack;
      std::vector<bool> keep(events.size(), true);
      std::uint64_t last_ts = 0;
      for (std::size_t i = 0; i < events.size(); ++i) {
        last_ts = std::max(last_ts, events[i].ts_ns);
        if (events[i].phase == 'B') {
          stack.push_back(i);
        } else if (events[i].phase == 'E') {
          if (stack.empty()) {
            keep[i] = false;  // begin evicted
          } else {
            stack.pop_back();
          }
        }
      }
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (keep[i]) {
          append_event_json(out, events[i], process.pid, thread.tid, process.clock_offset_ns,
                            first);
        }
      }
      // Dangling begins: synthesize ends, innermost first.
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        TraceSnapshot::Event closer = events[*it];
        closer.phase = 'E';
        closer.ts_ns = last_ts;
        closer.arg_name.clear();
        append_event_json(out, closer, process.pid, thread.tid, process.clock_offset_ns, first);
      }
    }
  }
  out << "\n]}\n";
  return out.str();
}

std::string chrome_trace_json() {
  ProcessTrace self;
  self.pid = 1;
  self.snapshot = take_trace_snapshot();
  return chrome_trace_json({&self, 1});
}

bool write_chrome_trace(const std::string& path, std::span<const ProcessTrace> processes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << chrome_trace_json(processes);
  return static_cast<bool>(out);
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << chrome_trace_json();
  return static_cast<bool>(out);
}

}  // namespace nisc::obs
