// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms, cheap enough to stay compiled into release builds.
//
// Design contract (DESIGN.md §10):
//   * the hot path of an already-registered metric is a single relaxed
//     atomic add — no locks, no allocation, no branches beyond the caller's
//     function-local-static guard;
//   * the subsystem is fully inert until the first registry touch: linking
//     nisc_obs allocates nothing and starts nothing until some code calls
//     registry() / counter() / gauge() / histogram() for the first time
//     (MetricsRegistry::exists() lets tests assert this);
//   * registration is thread-safe and idempotent: the same name always
//     returns the same object, with a stable address for the process
//     lifetime.
//
// Naming scheme: dot-separated "<layer>.<thing>[_<unit>]", e.g.
// "kernel.delta_cycles", "ipc.bytes_sent", "cosim.gdbk.roundtrip_us".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nisc::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, outstanding budget, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket semantics are upper-bound-inclusive: a
/// sample lands in the first bucket whose bound is >= the sample; samples
/// above the last bound land in the implicit overflow bucket. Bounds are
/// fixed at registration; observe() is a linear scan over a handful of
/// bounds plus three relaxed adds (bucket, count, sum).
class Histogram {
 public:
  void observe(std::uint64_t sample) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && sample > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }

  const std::string& name() const noexcept { return name_; }
  const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Bucket i counts samples in (bounds[i-1], bounds[i]]; bucket
  /// bounds.size() is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::size_t bucket_slots() const noexcept { return bounds_.size() + 1; }

  /// Linear-interpolated quantile estimate in [0,1] (0.5 = median). Returns
  /// the bucket upper bound containing the quantile (last bound for the
  /// overflow bucket); 0 when empty.
  std::uint64_t quantile(double q) const noexcept;

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<std::uint64_t> bounds)
      : name_(std::move(name)), bounds_(std::move(bounds)),
        buckets_(bounds_.size() + 1) {}
  std::string name_;
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Point-in-time copy of every registered metric (safe to use after more
/// metrics register; values are relaxed-read, so concurrent updates may be
/// torn *across* metrics but never within one).
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size()+1 entries
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramValue> histograms;
};

/// Latency bucket presets (microseconds / nanoseconds).
std::vector<std::uint64_t> default_us_bounds();
std::vector<std::uint64_t> default_bytes_bounds();

class MetricsRegistry {
 public:
  /// The process-wide registry; constructed on first call.
  static MetricsRegistry& instance();

  /// True once instance() has ever been called — the "fully inert until
  /// first touch" guarantee, assertable by the overhead guard test.
  static bool exists() noexcept;

  /// Finds or creates. The returned reference is stable for the process
  /// lifetime; cache it in a function-local static on hot paths.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` must be non-empty and strictly increasing; ignored (with the
  /// original bounds kept) when the histogram already exists.
  Histogram& histogram(std::string_view name, std::vector<std::uint64_t> bounds);

  MetricsSnapshot snapshot() const;

  /// Snapshot rendered as a stable JSON object: {"schema":1,"counters":{..},
  /// "gauges":{..},"histograms":{..}}.
  std::string render_json() const;

  /// Zeroes every value (registrations survive). For benchmarks/tests.
  void reset() noexcept;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;  // guards the maps, not the values
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Convenience accessors (all touch the registry).
inline Counter& counter(std::string_view name) { return MetricsRegistry::instance().counter(name); }
inline Gauge& gauge(std::string_view name) { return MetricsRegistry::instance().gauge(name); }
inline Histogram& histogram(std::string_view name, std::vector<std::uint64_t> bounds) {
  return MetricsRegistry::instance().histogram(name, std::move(bounds));
}

/// Renders a MetricsSnapshot as the same JSON render_json() emits.
std::string render_snapshot_json(const MetricsSnapshot& snapshot);

}  // namespace nisc::obs
