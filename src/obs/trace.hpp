// Cross-layer span/event tracer with Chrome trace_event JSON export.
//
// Every thread that emits records into its own bounded ring (oldest events
// overwritten), so tracing never allocates on the hot path after a thread's
// first event and never blocks other threads. Export merges the rings into
// the Chrome trace_event format (the JSON array Perfetto and
// chrome://tracing load), balancing begin/end pairs that lost a partner to
// ring eviction, so the output always parses with matched B/E events.
//
// The hot-path contract mirrors the metrics registry:
//   * tracing disabled (the default): one relaxed atomic load per
//     potential event — span helpers check tracing_enabled() first;
//   * tracing enabled: one steady-clock read plus a handful of stores into
//     the per-thread ring; no locks, no allocation after ring creation.
//
// Span names/categories must be string literals (or strings interned via
// obs::intern) — events store the pointer, not a copy.
//
// Simulated time: the SystemC kernel publishes the current sim time for its
// thread via set_thread_sim_time_ps(); every event emitted on that thread
// while a simulation runs carries it as a "sim_ps" arg, so the Perfetto
// wall-time view can be correlated with simulated time.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace nisc::obs {

inline constexpr std::uint64_t kNoSimTime = ~0ULL;

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

/// True while a trace is being recorded. Single relaxed load.
inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Starts recording. `ring_capacity` is the per-thread event capacity used
/// for rings created after this call (existing rings keep theirs); 0 keeps
/// the current default (65536, or $NISC_TRACE_BUF).
void enable_tracing(std::size_t ring_capacity = 0);

/// Stops recording (rings keep their contents for export).
void disable_tracing() noexcept;

/// Drops every recorded event and forgets rings of exited threads.
void clear_trace();

/// Publishes the simulated time for events emitted on the calling thread;
/// kNoSimTime clears it. Called by the kernel on every time advance.
void set_thread_sim_time_ps(std::uint64_t ps) noexcept;
std::uint64_t thread_sim_time_ps() noexcept;

/// Copies `s` into process-lifetime storage and returns a stable pointer,
/// deduplicated — for span names built at runtime.
const char* intern(std::string_view s);

/// Raw emit. `phase` is a Chrome trace phase: 'B' (span begin), 'E' (span
/// end), 'i' (instant). `arg_name`/`arg_value` attach one numeric argument.
/// Callers must check tracing_enabled() first (the span helpers do).
void emit(char phase, const char* name, const char* category,
          const char* arg_name = nullptr, std::uint64_t arg_value = 0) noexcept;

/// Instant event helper (no-op while disabled).
inline void instant(const char* name, const char* category,
                    const char* arg_name = nullptr, std::uint64_t arg_value = 0) noexcept {
  if (tracing_enabled()) emit('i', name, category, arg_name, arg_value);
}

/// RAII begin/end span. Costs one relaxed load when tracing is off.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category,
             const char* arg_name = nullptr, std::uint64_t arg_value = 0) noexcept
      : name_(name), category_(category), active_(tracing_enabled()) {
    if (active_) emit('B', name_, category_, arg_name, arg_value);
  }
  ~ScopedSpan() {
    if (active_) emit('E', name_, category_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_;
};

/// Number of events currently buffered across all rings (approximate while
/// threads are recording) and the number evicted by ring wrap-around.
std::size_t trace_event_count();
std::uint64_t trace_dropped_count();

/// Renders every buffered event as Chrome trace_event JSON:
/// {"traceEvents":[...],"displayTimeUnit":"ns"}. Unbalanced spans are
/// repaired (orphan ends dropped, dangling begins closed at the last
/// timestamp) so the result always loads in Perfetto / chrome://tracing.
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace nisc::obs
