// Cross-layer span/event tracer with Chrome trace_event JSON export.
//
// Every thread that emits records into its own bounded ring (oldest events
// overwritten), so tracing never allocates on the hot path after a thread's
// first event and never blocks other threads. Export merges the rings into
// the Chrome trace_event format (the JSON array Perfetto and
// chrome://tracing load), balancing begin/end pairs that lost a partner to
// ring eviction, so the output always parses with matched B/E events.
//
// The hot-path contract mirrors the metrics registry:
//   * tracing disabled (the default): one relaxed atomic load per
//     potential event — span helpers check tracing_enabled() first;
//   * tracing enabled: one steady-clock read plus a handful of relaxed
//     atomic stores into the per-thread ring; no locks, no allocation after
//     ring creation. Ring slots are field-atomic so an export taken
//     mid-recording reads them without data races (a concurrently
//     overwritten slot may mix fields from two events; the exporter's
//     repair pass keeps the output loadable regardless).
//
// Span names/categories must be string literals (or strings interned via
// obs::intern) — events store the pointer, not a copy.
//
// Simulated time: the SystemC kernel publishes the current sim time for its
// thread via set_thread_sim_time_ps(); every event emitted on that thread
// while a simulation runs carries it as a "sim_ps" arg, so the Perfetto
// wall-time view can be correlated with simulated time. The supervised ISS
// worker publishes cycles * clock_period_ps the same way (DESIGN.md §10.5).
//
// Cross-process export (DESIGN.md §10.5): take_trace_snapshot() materializes
// every ring into a serializable TraceSnapshot; encode/decode move it across
// a process boundary (the worker wire's ObsReport frame); the ProcessTrace
// overloads of chrome_trace_json merge N per-process snapshots into one
// Perfetto-loadable file with per-process track names and per-process clock
// offsets, so worker timestamps rebase onto the supervisor timeline.
//
// Ring eviction is surfaced as the registry counter "trace.dropped_events"
// (one add per overwritten slot) so silent overflow shows up in
// `cosim_stat stats`; per-thread dropped counts ride in the snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace nisc::obs {

inline constexpr std::uint64_t kNoSimTime = ~0ULL;

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

/// True while a trace is being recorded. Single relaxed load.
inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Starts recording. `ring_capacity` is the per-thread event capacity used
/// for rings created after this call (existing rings keep theirs); 0 keeps
/// the current default (65536, or $NISC_TRACE_BUF).
void enable_tracing(std::size_t ring_capacity = 0);

/// Stops recording (rings keep their contents for export).
void disable_tracing() noexcept;

/// Drops every recorded event and forgets rings of exited threads.
void clear_trace();

/// Publishes the simulated time for events emitted on the calling thread;
/// kNoSimTime clears it. Called by the kernel on every time advance.
void set_thread_sim_time_ps(std::uint64_t ps) noexcept;
std::uint64_t thread_sim_time_ps() noexcept;

/// Copies `s` into process-lifetime storage and returns a stable pointer,
/// deduplicated — for span names built at runtime.
const char* intern(std::string_view s);

/// Raw emit. `phase` is a Chrome trace phase: 'B' (span begin), 'E' (span
/// end), 'i' (instant). `arg_name`/`arg_value` attach one numeric argument.
/// Callers must check tracing_enabled() first (the span helpers do).
void emit(char phase, const char* name, const char* category,
          const char* arg_name = nullptr, std::uint64_t arg_value = 0) noexcept;

/// Raw flow emit. `phase` is 's' (flow start), 't' (flow step) or 'f' (flow
/// finish); `flow_id` links the arrows across threads and processes. Flow
/// events bind to the enclosing slice, so emit them inside a span.
void emit_flow(char phase, const char* name, const char* category,
               std::uint64_t flow_id) noexcept;

/// Instant event helper (no-op while disabled).
inline void instant(const char* name, const char* category,
                    const char* arg_name = nullptr, std::uint64_t arg_value = 0) noexcept {
  if (tracing_enabled()) emit('i', name, category, arg_name, arg_value);
}

/// Flow helpers (no-ops while disabled): a start/finish pair with the same
/// id renders as a Perfetto flow arrow between the enclosing slices — the
/// correlation-id mechanism of the cross-process export (DESIGN.md §10.5).
inline void flow_begin(const char* name, const char* category, std::uint64_t id) noexcept {
  if (tracing_enabled() && id != 0) emit_flow('s', name, category, id);
}
inline void flow_step(const char* name, const char* category, std::uint64_t id) noexcept {
  if (tracing_enabled() && id != 0) emit_flow('t', name, category, id);
}
inline void flow_end(const char* name, const char* category, std::uint64_t id) noexcept {
  if (tracing_enabled() && id != 0) emit_flow('f', name, category, id);
}

/// RAII begin/end span. Costs one relaxed load when tracing is off.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category,
             const char* arg_name = nullptr, std::uint64_t arg_value = 0) noexcept
      : name_(name), category_(category), active_(tracing_enabled()) {
    if (active_) emit('B', name_, category_, arg_name, arg_value);
  }
  ~ScopedSpan() {
    if (active_) emit('E', name_, category_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_;
};

/// Number of events currently buffered across all rings (approximate while
/// threads are recording) and the number evicted by ring wrap-around.
std::size_t trace_event_count();
std::uint64_t trace_dropped_count();

// ---------------------------------------------------------------------------
// Snapshot + cross-process merge (DESIGN.md §10.5)

/// A materialized copy of every ring: names become owned strings, so the
/// snapshot survives serialization across a process boundary.
struct TraceSnapshot {
  struct Event {
    std::string name;
    std::string cat;
    std::string arg_name;  ///< empty = no argument
    std::uint64_t arg_value = 0;
    std::uint64_t ts_ns = 0;
    std::uint64_t sim_ps = kNoSimTime;
    std::uint64_t flow_id = 0;
    char phase = 'i';

    bool operator==(const Event&) const = default;
  };
  struct Thread {
    std::uint32_t tid = 0;
    std::uint64_t dropped = 0;  ///< events evicted from this ring
    std::vector<Event> events;  ///< chronological

    bool operator==(const Thread&) const = default;
  };
  std::vector<Thread> threads;

  bool operator==(const TraceSnapshot&) const = default;
};

/// Copies every ring's current contents. Safe while threads are recording:
/// slots are read with relaxed atomics (a slot overwritten mid-copy may mix
/// two events; slots never written decode as empty and are skipped).
TraceSnapshot take_trace_snapshot();

/// Versioned little-endian serialization ("NTRC"), the payload of the
/// worker wire's ObsReport frame. decode throws util::RuntimeError on
/// magic/version mismatch or truncation.
std::vector<std::uint8_t> encode_trace_snapshot(const TraceSnapshot& snapshot);
TraceSnapshot decode_trace_snapshot(std::span<const std::uint8_t> bytes);

/// One process's contribution to a merged export. `clock_offset_ns` is
/// added to every timestamp, rebasing the process's steady clock onto the
/// merge target's timeline (the supervisor measures it via the ClockSync
/// handshake); a non-empty label becomes the Perfetto process_name.
struct ProcessTrace {
  std::string label;
  std::uint32_t pid = 1;
  std::int64_t clock_offset_ns = 0;
  TraceSnapshot snapshot;
};

/// Renders N per-process snapshots as one Chrome trace_event JSON document:
/// {"traceEvents":[...],"displayTimeUnit":"ns"}. Unbalanced spans are
/// repaired per thread (orphan ends dropped, dangling begins closed at the
/// last timestamp) so the result always loads in Perfetto.
std::string chrome_trace_json(std::span<const ProcessTrace> processes);

/// Single-process convenience: snapshots the calling process's rings.
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path);
bool write_chrome_trace(const std::string& path, std::span<const ProcessTrace> processes);

}  // namespace nisc::obs
