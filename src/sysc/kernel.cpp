#include "sysc/kernel.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sysc/iss_port.hpp"
#include "util/log.hpp"

namespace nisc::sysc {

namespace {
thread_local sc_simcontext* g_current_context = nullptr;
thread_local sc_process* g_current_process = nullptr;

/// Log sim-time hook (util cannot depend on sysc, so the kernel injects the
/// provider): reports the innermost live context's time on this thread.
bool log_sim_time_provider(std::uint64_t* sim_ps) {
  if (g_current_context == nullptr) return false;
  *sim_ps = g_current_context->time_stamp().ps();
  return true;
}

/// Publishes `now` as the calling thread's simulated time for trace spans
/// and restores the previous value on scope exit (nested contexts).
class SimTimeScope {
 public:
  explicit SimTimeScope(std::uint64_t ps) : previous_(obs::thread_sim_time_ps()) {
    obs::set_thread_sim_time_ps(ps);
  }
  ~SimTimeScope() { obs::set_thread_sim_time_ps(previous_); }

 private:
  std::uint64_t previous_;
};

}  // namespace

sc_simcontext& current_context() {
  util::require(g_current_context != nullptr, "no simulation context is current on this thread");
  return *g_current_context;
}

sc_process* current_process() noexcept { return g_current_process; }

// ---------------------------------------------------------------------------
// sc_object

sc_object::sc_object(std::string name) : ctx_(&current_context()) {
  name_ = ctx_->unique_name(name);
  ctx_->add_object(this);
}

sc_object::~sc_object() { ctx_->remove_object(this); }

// ---------------------------------------------------------------------------
// sc_event

sc_event::sc_event(std::string name) : name_(std::move(name)), ctx_(&current_context()) {
  ctx_->add_event(this);
}

sc_event::~sc_event() {
  ctx_->cancel_event(this);
  ctx_->remove_event(this);
}

void sc_event::notify() { fire(); }

void sc_event::notify_delta() { ctx_->schedule_event_delta(this); }

void sc_event::notify(const sc_time& delay) {
  ctx_->schedule_event_timed(this, ctx_->time_stamp() + delay);
}

void sc_event::add_static(sc_process* process) {
  if (std::find(static_sensitive_.begin(), static_sensitive_.end(), process) ==
      static_sensitive_.end()) {
    static_sensitive_.push_back(process);
    process->note_static_sensitized();
  }
}

void sc_event::add_dynamic(sc_process* process) { dynamic_waiters_.push_back(process); }

void sc_event::remove_dynamic(sc_process* process) noexcept {
  std::erase(dynamic_waiters_, process);
}

void sc_event::fire() {
  for (sc_process* p : static_sensitive_) {
    if (p->triggerable_by(this)) ctx_->make_runnable(p);
  }
  if (!dynamic_waiters_.empty()) {
    std::vector<sc_process*> waiters;
    waiters.swap(dynamic_waiters_);
    for (sc_process* p : waiters) ctx_->make_runnable(p);
  }
}

// ---------------------------------------------------------------------------
// sc_process

sc_process::sc_process(std::string name, process_kind kind, std::function<void()> body)
    : sc_object(std::move(name)), kind_(kind), body_(std::move(body)) {
  util::require(static_cast<bool>(body_), "sc_process: empty body");
}

sc_process::~sc_process() { kill(); }

void sc_process::make_sensitive(sc_event& event) { event.add_static(this); }

const char* sc_process::trace_name() const {
  if (trace_name_ == nullptr) trace_name_ = obs::intern(name());
  return trace_name_;
}

bool sc_process::triggerable_by(const sc_event* event) const noexcept {
  (void)event;
  if (terminated_) return false;
  if (kind_ != process_kind::Thread) return true;
  // Threads honour their current wait mode: a thread blocked in wait(event)
  // or wait(time) ignores static sensitivity.
  if (!started_) return true;  // has not reached its first wait yet
  return wait_mode_ == WaitMode::Static;
}

void sc_process::execute() {
  if (terminated_) return;
  ++run_count_;
  if (kind_ != process_kind::Thread) {
    sc_process* prev = g_current_process;
    g_current_process = this;
    try {
      body_();
    } catch (...) {
      g_current_process = prev;
      throw;
    }
    g_current_process = prev;
    return;
  }
  if (!started_) {
    started_ = true;
    host_ = std::thread(&sc_process::thread_main, this);
  }
  resume_and_wait();
  if (pending_exception_) {
    std::exception_ptr ex = pending_exception_;
    pending_exception_ = nullptr;
    terminated_ = true;
    std::rethrow_exception(ex);
  }
}

void sc_process::thread_main() {
  g_current_process = this;
  {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return turn_ == Turn::Process; });
  }
  if (!kill_requested_) {
    try {
      body_();
    } catch (KillException&) {
      // normal termination path during kill()
    } catch (...) {
      pending_exception_ = std::current_exception();
    }
  }
  terminated_ = true;
  {
    std::lock_guard lock(mutex_);
    turn_ = Turn::Kernel;
  }
  cv_.notify_all();
}

void sc_process::resume_and_wait() {
  std::unique_lock lock(mutex_);
  turn_ = Turn::Process;
  cv_.notify_all();
  cv_.wait(lock, [&] { return turn_ == Turn::Kernel; });
}

void sc_process::yield_to_kernel() {
  std::unique_lock lock(mutex_);
  turn_ = Turn::Kernel;
  cv_.notify_all();
  cv_.wait(lock, [&] { return turn_ == Turn::Process; });
  if (kill_requested_) throw KillException{};
}

void sc_process::kill() {
  if (kind_ == process_kind::Thread && started_ && !terminated_) {
    kill_requested_ = true;
    resume_and_wait();
  }
  if (host_.joinable()) host_.join();
  terminated_ = true;
  pending_exception_ = nullptr;
}

void sc_process::wait_static() {
  util::require(g_current_process == this && kind_ == process_kind::Thread,
                "wait() outside thread process");
  wait_mode_ = WaitMode::Static;
  yield_to_kernel();
}

void sc_process::wait_event(sc_event& event) {
  util::require(g_current_process == this && kind_ == process_kind::Thread,
                "wait(event) outside thread process");
  wait_mode_ = WaitMode::Event;
  dynamic_event_ = &event;
  event.add_dynamic(this);
  yield_to_kernel();
  dynamic_event_ = nullptr;
  wait_mode_ = WaitMode::Static;
}

void sc_process::wait_time(const sc_time& delay) {
  util::require(g_current_process == this && kind_ == process_kind::Thread,
                "wait(time) outside thread process");
  wait_mode_ = WaitMode::Timed;
  context().schedule_process_timed(this, context().time_stamp() + delay);
  yield_to_kernel();
  wait_mode_ = WaitMode::Static;
}

// ---------------------------------------------------------------------------
// sc_prim_channel

void sc_prim_channel::request_update() {
  if (update_requested_) return;
  update_requested_ = true;
  context().request_update(this);
}

// ---------------------------------------------------------------------------
// sc_simcontext

sc_simcontext::sc_simcontext() : previous_current_(g_current_context) {
  g_current_context = this;
  util::set_log_sim_time_provider(&log_sim_time_provider);
}

sc_simcontext::~sc_simcontext() {
  kill_all_processes();
  // Owned objects are destroyed in reverse creation order, after every
  // process is dead, so thread unwinding can never observe destroyed state.
  while (!owned_objects_.empty()) owned_objects_.pop_back();
  processes_.clear();
  g_current_context = previous_current_;
}

sc_simcontext::ContextGuard::ContextGuard(sc_simcontext& ctx) : previous_(g_current_context) {
  g_current_context = &ctx;
}

sc_simcontext::ContextGuard::~ContextGuard() { g_current_context = previous_; }

sc_process& sc_simcontext::create_method(std::string name, std::function<void()> body,
                                         process_kind kind) {
  util::require(kind != process_kind::Thread, "create_method: use create_thread for threads");
  ContextGuard guard(*this);
  processes_.push_back(std::make_unique<sc_process>(std::move(name), kind, std::move(body)));
  return *processes_.back();
}

sc_process& sc_simcontext::create_thread(std::string name, std::function<void()> body) {
  ContextGuard guard(*this);
  processes_.push_back(
      std::make_unique<sc_process>(std::move(name), process_kind::Thread, std::move(body)));
  return *processes_.back();
}

void sc_simcontext::register_extension(kernel_extension* extension) {
  util::require(extension != nullptr, "register_extension: null");
  extensions_.push_back(extension);
}

void sc_simcontext::unregister_extension(kernel_extension* extension) noexcept {
  std::erase(extensions_, extension);
}

void sc_simcontext::register_iss_port(iss_port_base* port) {
  util::require(port != nullptr, "register_iss_port: null");
  util::require(find_iss_port(port->name()) == nullptr,
                "register_iss_port: duplicate port name " + port->name());
  iss_ports_.push_back(port);
}

iss_port_base* sc_simcontext::find_iss_port(std::string_view name) const noexcept {
  for (iss_port_base* port : iss_ports_) {
    if (port->name() == name) return port;
  }
  return nullptr;
}

void sc_simcontext::elaborate() {
  if (elaborated_) return;
  elaborated_ = true;
  ContextGuard guard(*this);
  std::vector<sc_object*> snapshot = objects_;
  for (sc_object* obj : snapshot) obj->on_elaboration();
  for (kernel_extension* ext : extensions_) ext->on_elaboration(*this);
}

void sc_simcontext::initialize_processes() {
  for (const auto& process : processes_) {
    if (process->initialize()) make_runnable(process.get());
  }
}

void sc_simcontext::run_one_delta() {
  const std::uint64_t delta_id = stats_.delta_cycles;
  // One enabled check per delta, reused for every emit in this function: a
  // delta here can be tens of nanoseconds, so the disabled path must stay a
  // single relaxed load. Raw B/E instead of ScopedSpan keeps the off case
  // branch-only; if a process throws, export-time repair closes the span.
  const bool tracing = obs::tracing_enabled();
  if (tracing) obs::emit('B', "kernel.delta", "kernel", "delta", delta_id);
  for (kernel_extension* ext : extensions_) {
    ext->on_cycle_begin(*this);
    ++stats_.extension_checks;
  }
  // Evaluate phase. Immediate notifications may append to the worklist.
  std::size_t i = 0;
  while (i < runnable_.size()) {
    sc_process* p = runnable_[i++];
    p->runnable_flag = false;
    if (tracing && p->kind() == process_kind::IssMethod) {
      // The paper's iss_process: dispatched only when data crosses the ISS
      // boundary, so each activation is worth a span of its own.
      obs::ScopedSpan span(p->trace_name(), "kernel.iss_process");
      p->execute();
    } else {
      p->execute();
    }
    ++stats_.process_dispatches;
  }
  runnable_.clear();
  // Update phase.
  for (sc_prim_channel* ch : update_queue_) {
    ch->update_requested_ = false;
    ch->update();
    ++stats_.channel_updates;
  }
  update_queue_.clear();
  // Delta-notification phase.
  ++stats_.delta_cycles;
  if (!delta_events_.empty()) {
    std::vector<sc_event*> events;
    events.swap(delta_events_);
    for (sc_event* e : events) e->fire();
  }
  for (kernel_extension* ext : extensions_) ext->on_cycle_end(*this);
  if (monitor_ != nullptr) monitor_->on_delta_end(*this, delta_id);
  if (tracing) obs::emit('E', "kernel.delta", "kernel");
}

bool sc_simcontext::advance_time(const sc_time& limit) {
  if (timed_queue_.empty()) return false;
  sc_time next = sc_time::from_ps(timed_queue_.begin()->first.first);
  if (next > limit) {
    now_ = limit;
    return false;
  }
  now_ = next;
  ++stats_.timed_advances;
  if (obs::tracing_enabled()) {
    // Publishing the simulated time only matters while events are being
    // recorded; skipping the thread-local store keeps the disabled
    // advance path free of observability work.
    obs::set_thread_sim_time_ps(now_.ps());
    obs::instant("kernel.time_advance", "kernel", "sim_ps", now_.ps());
  }
  while (!timed_queue_.empty() && timed_queue_.begin()->first.first == next.ps()) {
    TimedEntry entry = timed_queue_.begin()->second;
    timed_queue_.erase(timed_queue_.begin());
    if (entry.event != nullptr) {
      entry.event->fire();
    } else if (entry.process != nullptr) {
      make_runnable(entry.process);
    }
  }
  for (kernel_extension* ext : extensions_) ext->on_time_advance(*this, now_);
  return true;
}

bool sc_simcontext::has_pending_activity() const noexcept {
  return !runnable_.empty() || !update_queue_.empty() || !delta_events_.empty();
}

sc_time sc_simcontext::run(sc_time duration) {
  return run_until(now_ + duration);
}

sc_time sc_simcontext::run_to_starvation() { return run_until(sc_time::max()); }

sc_time sc_simcontext::run_until(sc_time end) {
  ContextGuard guard(*this);
  SimTimeScope sim_time(now_.ps());
  obs::ScopedSpan run_span("kernel.run", "kernel");
  const kernel_stats entry_stats = stats_;
  elaborate();
  if (!initialized_) {
    initialized_ = true;
    initialize_processes();
  }
  stop_requested_ = false;
  for (;;) {
    run_one_delta();
    if (stop_requested_) break;
    if (has_pending_activity()) continue;
    if (now_ >= end) break;
    if (advance_time(end)) continue;
    if (now_ >= end) break;  // clamped to the window end, nothing to fire
    // Starvation before the window end: give co-simulation extensions a
    // chance to wait for external (ISS) activity.
    obs::instant("kernel.starvation", "kernel");
    bool resumed = false;
    for (kernel_extension* ext : extensions_) resumed = ext->on_starvation(*this) || resumed;
    if (!resumed) break;
  }
  for (kernel_extension* ext : extensions_) ext->on_run_end(*this);
  // Scheduler counters are pushed once per run() — per-delta paths stay a
  // plain struct increment, so tracing/metrics cannot slow the hot loop.
  static obs::Counter& c_deltas = obs::counter("kernel.delta_cycles");
  static obs::Counter& c_dispatches = obs::counter("kernel.process_dispatches");
  static obs::Counter& c_updates = obs::counter("kernel.channel_updates");
  static obs::Counter& c_advances = obs::counter("kernel.timed_advances");
  static obs::Counter& c_runs = obs::counter("kernel.runs");
  c_deltas.add(stats_.delta_cycles - entry_stats.delta_cycles);
  c_dispatches.add(stats_.process_dispatches - entry_stats.process_dispatches);
  c_updates.add(stats_.channel_updates - entry_stats.channel_updates);
  c_advances.add(stats_.timed_advances - entry_stats.timed_advances);
  c_runs.add(1);
  return now_;
}

void sc_simcontext::make_runnable(sc_process* process) {
  if (process == nullptr || process->terminated() || process->runnable_flag) return;
  process->runnable_flag = true;
  runnable_.push_back(process);
}

void sc_simcontext::request_update(sc_prim_channel* channel) { update_queue_.push_back(channel); }

void sc_simcontext::schedule_event_delta(sc_event* event) {
  if (std::find(delta_events_.begin(), delta_events_.end(), event) == delta_events_.end()) {
    delta_events_.push_back(event);
  }
}

void sc_simcontext::schedule_event_timed(sc_event* event, sc_time at) {
  util::require(at >= now_, "schedule_event_timed: time in the past");
  timed_queue_.emplace(TimedKey{at.ps(), timed_seq_++}, TimedEntry{event, nullptr});
}

void sc_simcontext::schedule_process_timed(sc_process* process, sc_time at) {
  util::require(at >= now_, "schedule_process_timed: time in the past");
  timed_queue_.emplace(TimedKey{at.ps(), timed_seq_++}, TimedEntry{nullptr, process});
}

void sc_simcontext::cancel_event(sc_event* event) noexcept {
  std::erase(delta_events_, event);
  for (auto it = timed_queue_.begin(); it != timed_queue_.end();) {
    if (it->second.event == event) {
      it = timed_queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void sc_simcontext::add_object(sc_object* object) {
  objects_.push_back(object);
  objects_by_name_.emplace(object->name(), object);
}

void sc_simcontext::remove_object(sc_object* object) noexcept {
  std::erase(objects_, object);
  auto it = objects_by_name_.find(object->name());
  if (it != objects_by_name_.end() && it->second == object) objects_by_name_.erase(it);
  std::erase_if(iss_ports_, [object](iss_port_base* p) {
    return static_cast<sc_object*>(p) == object;
  });
}

void sc_simcontext::add_event(sc_event* event) { events_.push_back(event); }

void sc_simcontext::remove_event(sc_event* event) noexcept { std::erase(events_, event); }

sc_event* sc_simcontext::find_event(std::string_view name, std::uint32_t ordinal) const noexcept {
  std::uint32_t seen = 0;
  for (sc_event* event : events_) {
    if (event->name() != name) continue;
    if (seen == ordinal) return event;
    ++seen;
  }
  return nullptr;
}

namespace {

/// Ordinal of `event` among same-named events in registration order.
std::uint32_t event_ordinal(const std::vector<sc_event*>& events, const sc_event* event) noexcept {
  std::uint32_t ordinal = 0;
  for (sc_event* candidate : events) {
    if (candidate == event) return ordinal;
    if (candidate->name() == event->name()) ++ordinal;
  }
  return ordinal;
}

}  // namespace

kernel_state sc_simcontext::save_state() const {
  util::require(runnable_.empty() && update_queue_.empty(),
                "save_state: kernel is mid-delta (runnable processes or pending updates)");
  kernel_state state;
  state.now_ps = now_.ps();
  state.timed_seq = timed_seq_;
  state.stats = stats_;
  state.timed.reserve(timed_queue_.size());
  for (const auto& [key, entry] : timed_queue_) {
    kernel_state::timed_entry out;
    out.at_ps = key.first;
    out.seq = key.second;
    if (entry.process != nullptr) {
      out.is_process = true;
      out.name = entry.process->name();
    } else if (entry.event != nullptr) {
      out.name = entry.event->name();
      out.ordinal = event_ordinal(events_, entry.event);
    }
    state.timed.push_back(std::move(out));
  }
  state.delta_events.reserve(delta_events_.size());
  for (const sc_event* event : delta_events_) {
    state.delta_events.push_back({event->name(), event_ordinal(events_, event)});
  }
  return state;
}

void sc_simcontext::restore_state(const kernel_state& state) {
  util::require(runnable_.empty() && update_queue_.empty(),
                "restore_state: kernel is mid-delta");
  elaborate();
  // The snapshotted run already executed the initialization phase; running
  // it again would double-dispatch every initializable process.
  initialized_ = true;
  timed_queue_.clear();
  delta_events_.clear();
  now_ = sc_time::from_ps(state.now_ps);
  timed_seq_ = state.timed_seq;
  stats_ = state.stats;
  for (const kernel_state::timed_entry& entry : state.timed) {
    TimedEntry resolved;
    if (entry.is_process) {
      sc_object* object = find_object(entry.name);
      resolved.process = dynamic_cast<sc_process*>(object);
      if (resolved.process == nullptr) {
        throw util::RuntimeError("restore_state: unresolved process '" + entry.name + "'");
      }
    } else {
      resolved.event = find_event(entry.name, entry.ordinal);
      if (resolved.event == nullptr) {
        throw util::RuntimeError("restore_state: unresolved event '" + entry.name + "' ordinal " +
                                 std::to_string(entry.ordinal));
      }
    }
    timed_queue_.emplace(TimedKey{entry.at_ps, entry.seq}, resolved);
  }
  for (const kernel_state::delta_entry& entry : state.delta_events) {
    sc_event* event = find_event(entry.name, entry.ordinal);
    if (event == nullptr) {
      throw util::RuntimeError("restore_state: unresolved delta event '" + entry.name + "'");
    }
    delta_events_.push_back(event);
  }
}

std::string sc_simcontext::unique_name(const std::string& base) {
  if (objects_by_name_.find(base) == objects_by_name_.end() && name_counters_.find(base) == name_counters_.end()) {
    name_counters_[base] = 0;
    return base;
  }
  int& counter = name_counters_[base];
  for (;;) {
    ++counter;
    std::ostringstream candidate;
    candidate << base << "_" << counter;
    if (objects_by_name_.find(candidate.str()) == objects_by_name_.end()) return candidate.str();
  }
}

sc_object* sc_simcontext::find_object(std::string_view name) const noexcept {
  auto it = objects_by_name_.find(name);
  return it == objects_by_name_.end() ? nullptr : it->second;
}

std::vector<sc_process*> sc_simcontext::process_list() const {
  std::vector<sc_process*> out;
  out.reserve(processes_.size());
  for (const auto& process : processes_) out.push_back(process.get());
  return out;
}

void sc_simcontext::kill_all_processes() noexcept {
  for (const auto& process : processes_) {
    try {
      process->kill();
    } catch (...) {
      // Destruction path must not throw.
    }
  }
}

// ---------------------------------------------------------------------------
// free wait functions

namespace {
sc_process& waiting_process() {
  sc_process* p = g_current_process;
  util::require(p != nullptr, "wait() called outside a process");
  util::require(p->is_thread(), "wait() called from a method process");
  return *p;
}
}  // namespace

void wait() { waiting_process().wait_static(); }
void wait(sc_event& event) { waiting_process().wait_event(event); }
void wait(const sc_time& delay) { waiting_process().wait_time(delay); }

}  // namespace nisc::sysc
