// sc_clock: a free-running boolean clock source.
//
// The value starts false; the first posedge lands in the first delta cycle
// of t = 0, then the signal toggles every half period (posedges at k*period).
#pragma once

#include "sysc/sc_signal.hpp"

namespace nisc::sysc {

class sc_clock : public sc_object {
 public:
  sc_clock(std::string name, sc_time period)
      : sc_object(std::move(name)),
        period_(period),
        half_(sc_time::from_ps(period.ps() / 2)),
        signal_(this->name() + ".sig", false),
        tick_(this->name() + ".tick") {
    util::require(period.ps() >= 2 && period.ps() % 2 == 0,
                  "sc_clock: period must be a positive even number of ps");
    process_ = &context().create_method(this->name() + ".toggle", [this] { toggle(); });
    process_->make_sensitive(tick_);
  }

  const sc_time& period() const noexcept { return period_; }
  bool read() const noexcept { return signal_.read(); }

  /// Number of completed posedges so far.
  std::uint64_t posedge_count() const noexcept { return posedges_; }

  sc_signal<bool>& signal() noexcept { return signal_; }
  sc_event& posedge_event() noexcept { return signal_.posedge_event(); }
  sc_event& negedge_event() noexcept { return signal_.negedge_event(); }
  sc_event& default_event() noexcept { return signal_.value_changed_event(); }

 private:
  void toggle() {
    const bool next = !signal_.read();
    signal_.write(next);
    if (next) ++posedges_;
    tick_.notify(half_);
  }

  sc_time period_;
  sc_time half_;
  sc_signal<bool> signal_;
  sc_event tick_;
  sc_process* process_ = nullptr;
  std::uint64_t posedges_ = 0;
};

}  // namespace nisc::sysc
