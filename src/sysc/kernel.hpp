// The niscosim SystemC-like simulation kernel.
//
// A from-scratch discrete-event kernel following SystemC 2.0 semantics
// (evaluate -> update -> delta-notify -> timed-notify), extended with the
// hooks the paper's two co-simulation schemes patch into the OSCI kernel:
//
//  * kernel_extension::on_cycle_begin  -- the "GDB stopped at breakpoint?" /
//    "message to exchange?" check at the start of every simulation cycle
//    (paper Figs. 3 and 5);
//  * kernel_extension::on_cycle_end    -- the "interrupt generated?" check
//    after event handling (paper Fig. 5);
//  * an iss-port registry so extensions can route ISS traffic to iss_in /
//    iss_out ports by name (paper §3.1, §4.2).
//
// Unlike OSCI SystemC there is no global simulation context: each
// sc_simcontext is an independent kernel instance (a thread-local "current"
// pointer exists only to serve object constructors), so tests can run many
// simulations per process.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "sysc/sc_time.hpp"
#include "util/error.hpp"

namespace nisc::sysc {

class sc_simcontext;
class sc_event;
class sc_process;
class iss_port_base;

/// Returns the innermost live simulation context on this thread.
/// Throws LogicError when no context exists.
sc_simcontext& current_context();

/// Base of every named simulation object (modules, channels, ports,
/// processes). Registers with the current context on construction.
class sc_object {
 public:
  explicit sc_object(std::string name);
  virtual ~sc_object();

  sc_object(const sc_object&) = delete;
  sc_object& operator=(const sc_object&) = delete;

  /// Unique (context-wide) object name.
  const std::string& name() const noexcept { return name_; }

  /// The kernel instance this object belongs to.
  sc_simcontext& context() const noexcept { return *ctx_; }

  /// Called once by the kernel before the first delta cycle; used by ports
  /// to verify binding. Throws on elaboration errors.
  virtual void on_elaboration() {}

 private:
  std::string name_;
  sc_simcontext* ctx_;
};

/// A notifiable synchronization point (SystemC sc_event). Supports
/// immediate, delta and timed notification.
class sc_event {
 public:
  explicit sc_event(std::string name = "event");
  ~sc_event();

  sc_event(const sc_event&) = delete;
  sc_event& operator=(const sc_event&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Immediate notification: sensitive processes become runnable in the
  /// *current* evaluate phase.
  void notify();
  /// Delta notification: sensitive processes run in the next delta cycle.
  void notify_delta();
  /// Timed notification after `delay`.
  void notify(const sc_time& delay);

  /// Static sensitivity registration (used by `sensitive <<`).
  void add_static(sc_process* process);
  /// Dynamic registration for a thread blocked in wait(event).
  void add_dynamic(sc_process* process);
  void remove_dynamic(sc_process* process) noexcept;

  /// Kernel-internal: triggers all sensitive processes.
  void fire();

 private:
  std::string name_;
  sc_simcontext* ctx_;
  std::vector<sc_process*> static_sensitive_;
  std::vector<sc_process*> dynamic_waiters_;
};

/// Process flavors. IssMethod is the paper's `iss_process`: scheduled only
/// when data actually crosses the ISS boundary (§3.1).
enum class process_kind : std::uint8_t { Method, Thread, IssMethod };

/// A simulation process: either a run-to-completion method or a cooperative
/// thread (hosted on a std::thread, exactly one of kernel/process running
/// at any instant).
class sc_process : public sc_object {
 public:
  sc_process(std::string name, process_kind kind, std::function<void()> body);
  ~sc_process() override;

  process_kind kind() const noexcept { return kind_; }
  bool is_thread() const noexcept { return kind_ == process_kind::Thread; }
  bool terminated() const noexcept { return terminated_; }

  /// Number of times the process has been dispatched by the scheduler.
  std::uint64_t run_count() const noexcept { return run_count_; }

  /// Excludes the process from the initialization phase.
  void dont_initialize() noexcept { dont_initialize_ = true; }
  bool initialize() const noexcept { return !dont_initialize_; }

  /// Adds `event` to the static sensitivity list.
  void make_sensitive(sc_event& event);

  // -- scheduler interface ------------------------------------------------

  /// Runs the process once (method: full call; thread: until next wait()).
  void execute();

  /// True when a notification of `event` should make this process runnable
  /// (method: always; thread: depends on its current wait mode).
  bool triggerable_by(const sc_event* event) const noexcept;

  /// Kernel-internal flag avoiding duplicate entries in the runnable queue.
  bool runnable_flag = false;

  /// Number of events in this process's static sensitivity list (maintained
  /// by sc_event::add_static; exposed for the elaboration analysis passes).
  std::size_t static_sensitivity_count() const noexcept { return static_sensitivity_count_; }
  void note_static_sensitized() noexcept { ++static_sensitivity_count_; }

  /// Terminates a thread process by unwinding it with a kill exception.
  void kill();

  /// Process name as a stable interned C string, for trace-event emission
  /// (span records store the pointer, not a copy). Interns lazily.
  const char* trace_name() const;

  // -- thread-side interface (valid only inside this process's body) ------

  void wait_static();
  void wait_event(sc_event& event);
  void wait_time(const sc_time& delay);

 private:
  enum class WaitMode : std::uint8_t { Static, Event, Timed };
  enum class Turn : std::uint8_t { Kernel, Process };

  struct KillException {};

  void thread_main();
  void yield_to_kernel();
  void resume_and_wait();

  process_kind kind_;
  std::function<void()> body_;
  bool dont_initialize_ = false;
  bool terminated_ = false;
  bool started_ = false;
  std::uint64_t run_count_ = 0;
  std::size_t static_sensitivity_count_ = 0;

  WaitMode wait_mode_ = WaitMode::Static;
  sc_event* dynamic_event_ = nullptr;
  mutable const char* trace_name_ = nullptr;

  // thread machinery
  std::thread host_;
  std::mutex mutex_;
  std::condition_variable cv_;
  Turn turn_ = Turn::Kernel;
  bool kill_requested_ = false;
  std::exception_ptr pending_exception_;
};

/// Observer interface for channel-access instrumentation. The delta-cycle
/// race detector (src/analysis/race.hpp) implements it; the kernel and the
/// primitive channels invoke it only when a monitor is installed, so the
/// disabled-path cost is a single pointer test per access.
///
/// Implementations must not throw: the hooks are called from noexcept-ish
/// hot paths (sc_signal::read).
class access_monitor {
 public:
  virtual ~access_monitor() = default;

  /// A process (nullptr when called from outside any process, e.g. testbench
  /// top-level code) wrote `channel` during delta cycle `delta`.
  virtual void on_channel_write(const sc_object& channel, const sc_process* writer,
                                std::uint64_t delta) = 0;
  /// A process read `channel` during delta cycle `delta`.
  virtual void on_channel_read(const sc_object& channel, const sc_process* reader,
                               std::uint64_t delta) = 0;
  /// Delta cycle `delta` finished (evaluate + update + delta-notify done).
  virtual void on_delta_end(sc_simcontext& ctx, std::uint64_t delta) = 0;
};

/// A deferred reference to an event that may not be resolvable yet (e.g. a
/// port's edge event before the port is bound). Resolved at elaboration.
struct event_finder {
  std::function<sc_event&()> resolve;
};

/// Base class of channels that take part in the update phase (sc_signal,
/// sc_fifo).
class sc_prim_channel : public sc_object {
 public:
  using sc_object::sc_object;

  /// Performs the deferred value update; called by the kernel during the
  /// update phase.
  virtual void update() {}

 protected:
  /// Enqueues this channel for the next update phase (idempotent per phase).
  void request_update();

 private:
  friend class sc_simcontext;
  bool update_requested_ = false;
};

/// The paper's kernel-modification surface. Extensions registered with a
/// context are invoked by the scheduler at the points the paper's modified
/// scheduling algorithms (Figs. 3 and 5) insert their checks.
class kernel_extension {
 public:
  virtual ~kernel_extension() = default;

  /// After elaboration, before the initialization phase.
  virtual void on_elaboration(sc_simcontext&) {}
  /// Start of every simulation (delta) cycle, before evaluation.
  virtual void on_cycle_begin(sc_simcontext&) {}
  /// End of every simulation cycle, after the update/delta-notify phases.
  virtual void on_cycle_end(sc_simcontext&) {}
  /// Whenever simulated time advances.
  virtual void on_time_advance(sc_simcontext&, const sc_time& now) { (void)now; }
  /// Called when the kernel would otherwise starve (nothing runnable, no
  /// pending notifications) before the end of the run window. An extension
  /// expecting external activity (e.g. the ISS is still executing) may block
  /// for it, inject events, and return true to keep the run alive.
  virtual bool on_starvation(sc_simcontext&) { return false; }
  /// When run() returns.
  virtual void on_run_end(sc_simcontext&) {}
};

/// Aggregate scheduler statistics (exposed for tests and benchmarks).
struct kernel_stats {
  std::uint64_t delta_cycles = 0;
  std::uint64_t process_dispatches = 0;
  std::uint64_t channel_updates = 0;
  std::uint64_t timed_advances = 0;
  std::uint64_t extension_checks = 0;

  bool operator==(const kernel_stats&) const = default;
};

/// Schedulable-state snapshot of a quiescent kernel (cosim/checkpoint.hpp,
/// DESIGN.md §12): simulated time, the delta/sequence counters, and every
/// pending notification identified *by name* so the snapshot can be applied
/// to an identically rebuilt design. Notifications reference events by
/// (name, ordinal-among-same-name, in registration order) because sc_event
/// names — unlike sc_object names — are not uniquified; a deterministically
/// rebuilt design reproduces both.
///
/// Not captured (host substitution, DESIGN.md §2): thread-process stacks.
/// A snapshot is only faithful when every pending wait is event- or
/// method-based, or the threads are re-driven to their wait points by
/// deterministic re-execution (what the supervisor's replay does).
struct kernel_state {
  struct timed_entry {
    std::uint64_t at_ps = 0;
    std::uint64_t seq = 0;  ///< original tie-break: same-instant firing order
    bool is_process = false;
    std::string name;
    std::uint32_t ordinal = 0;  ///< events only; 0 for processes

    bool operator==(const timed_entry&) const = default;
  };
  struct delta_entry {
    std::string name;
    std::uint32_t ordinal = 0;

    bool operator==(const delta_entry&) const = default;
  };

  std::uint64_t now_ps = 0;
  std::uint64_t timed_seq = 0;
  kernel_stats stats;
  std::vector<timed_entry> timed;
  std::vector<delta_entry> delta_events;

  bool operator==(const kernel_state&) const = default;
};

/// One independent simulation kernel: object registry, event queues and the
/// scheduler.
class sc_simcontext {
 public:
  sc_simcontext();
  ~sc_simcontext();

  sc_simcontext(const sc_simcontext&) = delete;
  sc_simcontext& operator=(const sc_simcontext&) = delete;

  // -- construction API ----------------------------------------------------

  /// Creates a kernel-owned object (module, channel, ...) destroyed with the
  /// context, after all processes have been killed. This is the recommended
  /// way to build a design: it guarantees thread processes never outlive the
  /// state they reference.
  template <typename T, typename... Args>
  T& create(Args&&... args) {
    ContextGuard guard(*this);
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    owned_objects_.push_back(std::move(owned));
    return ref;
  }

  /// Registers a free-standing (module-less) method process; used by
  /// sc_clock and by tests.
  sc_process& create_method(std::string name, std::function<void()> body,
                            process_kind kind = process_kind::Method);
  /// Registers a free-standing thread process.
  sc_process& create_thread(std::string name, std::function<void()> body);

  /// Registers an extension (non-owning; must outlive the context's runs).
  void register_extension(kernel_extension* extension);
  void unregister_extension(kernel_extension* extension) noexcept;

  /// Installs (or clears, with nullptr) the channel-access monitor used by
  /// the delta-cycle race detector. Non-owning; at most one at a time.
  void set_monitor(access_monitor* monitor) noexcept { monitor_ = monitor; }
  access_monitor* monitor() const noexcept { return monitor_; }

  /// iss_in / iss_out registry (paper's kernel-level port table).
  void register_iss_port(iss_port_base* port);
  iss_port_base* find_iss_port(std::string_view name) const noexcept;
  const std::vector<iss_port_base*>& iss_ports() const noexcept { return iss_ports_; }

  // -- run control ----------------------------------------------------------

  /// Performs elaboration checks once (idempotent; run() calls it).
  void elaborate();

  /// Advances the simulation by at most `duration`. Returns the new absolute
  /// time. May be called repeatedly to continue the same simulation.
  sc_time run(sc_time duration);

  /// Runs until event starvation (no runnable processes, no pending
  /// notifications) or sc_stop.
  sc_time run_to_starvation();

  /// Requests the current run() to return after the current delta cycle.
  void stop() noexcept { stop_requested_ = true; }
  bool stop_requested() const noexcept { return stop_requested_; }

  // -- checkpoint interface (cosim/checkpoint.hpp) ---------------------------

  /// Captures the scheduler state between run() calls. Throws LogicError
  /// when called mid-delta (runnable processes or pending updates exist):
  /// snapshots must land on delta-cycle boundaries, mirroring the wire
  /// snapshot's frame-boundary invariant.
  kernel_state save_state() const;

  /// Applies a snapshot to this context, which must be an identically
  /// rebuilt design that has not yet run (elaboration is performed here;
  /// the initialization phase is skipped — the snapshotted run already
  /// executed it). Throws RuntimeError when a named event/process cannot
  /// be resolved.
  void restore_state(const kernel_state& state);

  /// Resolves the `ordinal`-th live event named `name`, in registration
  /// order; nullptr when absent.
  sc_event* find_event(std::string_view name, std::uint32_t ordinal = 0) const noexcept;

  sc_time time_stamp() const noexcept { return now_; }
  std::uint64_t delta_count() const noexcept { return stats_.delta_cycles; }
  const kernel_stats& stats() const noexcept { return stats_; }

  // -- scheduler services (used by kernel components) ------------------------

  void make_runnable(sc_process* process);
  void request_update(sc_prim_channel* channel);
  void schedule_event_delta(sc_event* event);
  void schedule_event_timed(sc_event* event, sc_time at);
  void schedule_process_timed(sc_process* process, sc_time at);
  void cancel_event(sc_event* event) noexcept;

  // -- registry services ------------------------------------------------------

  void add_object(sc_object* object);
  void remove_object(sc_object* object) noexcept;
  void add_event(sc_event* event);
  void remove_event(sc_event* event) noexcept;
  std::string unique_name(const std::string& base);
  sc_object* find_object(std::string_view name) const noexcept;
  std::size_t object_count() const noexcept { return objects_.size(); }

  /// All live objects, in registration order (analysis passes iterate this).
  const std::vector<sc_object*>& objects() const noexcept { return objects_; }
  /// All processes registered with this context (non-owning views).
  std::vector<sc_process*> process_list() const;

  /// RAII helper making this context current on the calling thread.
  class ContextGuard {
   public:
    explicit ContextGuard(sc_simcontext& ctx);
    ~ContextGuard();

   private:
    sc_simcontext* previous_;
  };

 private:
  // Timed notifications keyed by (time, insertion sequence). A sorted map —
  // not a priority queue — so destroyed events can cancel their entries.
  struct TimedEntry {
    sc_event* event = nullptr;  // exactly one of event/process is set
    sc_process* process = nullptr;
  };
  using TimedKey = std::pair<std::uint64_t, std::uint64_t>;  // (ps, seq)

  sc_time run_until(sc_time end);
  void initialize_processes();
  void run_one_delta();
  bool advance_time(const sc_time& limit);
  bool has_pending_activity() const noexcept;
  void kill_all_processes() noexcept;

  sc_simcontext* previous_current_;

  sc_time now_;
  bool elaborated_ = false;
  bool initialized_ = false;
  bool stop_requested_ = false;
  std::uint64_t timed_seq_ = 0;

  std::vector<sc_process*> runnable_;
  std::vector<sc_prim_channel*> update_queue_;
  std::vector<sc_event*> delta_events_;
  std::multimap<TimedKey, TimedEntry> timed_queue_;

  std::vector<sc_object*> objects_;  // non-owning registry, insertion order
  std::vector<sc_event*> events_;    // non-owning registry, insertion order
  std::map<std::string, sc_object*, std::less<>> objects_by_name_;
  std::map<std::string, int> name_counters_;
  std::vector<std::unique_ptr<sc_process>> processes_;
  std::vector<std::unique_ptr<sc_object>> owned_objects_;
  std::vector<kernel_extension*> extensions_;
  std::vector<iss_port_base*> iss_ports_;
  access_monitor* monitor_ = nullptr;

  kernel_stats stats_;
};

// -- thread-process wait API (valid only inside an executing thread body) ---

/// Suspends the calling thread process until its static sensitivity fires.
void wait();
/// Suspends until `event` is notified.
void wait(sc_event& event);
/// Suspends for `delay` of simulated time.
void wait(const sc_time& delay);

/// The process currently being dispatched on this thread (nullptr outside
/// process execution).
sc_process* current_process() noexcept;

}  // namespace nisc::sysc
