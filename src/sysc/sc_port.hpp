// sc_in<T> / sc_out<T>: signal ports with elaboration-time binding checks.
#pragma once

#include "sysc/sc_signal.hpp"

namespace nisc::sysc {

/// Type-erased base of sc_in / sc_out, letting analysis passes enumerate
/// signal ports and query their binding state without knowing T.
class sc_port_base : public sc_object {
 public:
  using sc_object::sc_object;

  /// True once the port has been bound to a signal.
  virtual bool bound() const noexcept = 0;
  /// "sc_in" or "sc_out" (for diagnostics).
  virtual const char* port_kind() const noexcept = 0;
};

/// Read-only port onto an sc_signal<T>.
template <typename T>
class sc_in : public sc_port_base {
 public:
  explicit sc_in(std::string name = "in") : sc_port_base(std::move(name)) {}

  void bind(sc_signal<T>& signal) noexcept { signal_ = &signal; }
  void operator()(sc_signal<T>& signal) noexcept { bind(signal); }
  bool bound() const noexcept override { return signal_ != nullptr; }
  const char* port_kind() const noexcept override { return "sc_in"; }

  const T& read() const {
    util::require(bound(), "sc_in " + name() + ": read before bind");
    return signal_->read();
  }

  sc_event& value_changed_event() {
    util::require(bound(), "sc_in " + name() + ": unbound");
    return signal_->value_changed_event();
  }
  sc_event& default_event() { return value_changed_event(); }

  sc_event& posedge_event() {
    util::require(bound(), "sc_in " + name() + ": unbound");
    return signal_->posedge_event();
  }
  sc_event& negedge_event() {
    util::require(bound(), "sc_in " + name() + ": unbound");
    return signal_->negedge_event();
  }

  /// Deferred event references, usable in `sensitive <<` before binding.
  event_finder value_changed() {
    return {[this]() -> sc_event& { return value_changed_event(); }};
  }
  event_finder pos() {
    return {[this]() -> sc_event& { return posedge_event(); }};
  }
  event_finder neg() {
    return {[this]() -> sc_event& { return negedge_event(); }};
  }
  event_finder default_event_finder() { return value_changed(); }

  void on_elaboration() override {
    util::require(bound(), "sc_in " + name() + ": left unbound at elaboration");
  }

 private:
  sc_signal<T>* signal_ = nullptr;
};

/// Write port onto an sc_signal<T> (reading back is allowed, as in SystemC).
template <typename T>
class sc_out : public sc_port_base {
 public:
  explicit sc_out(std::string name = "out") : sc_port_base(std::move(name)) {}

  void bind(sc_signal<T>& signal) noexcept { signal_ = &signal; }
  void operator()(sc_signal<T>& signal) noexcept { bind(signal); }
  bool bound() const noexcept override { return signal_ != nullptr; }
  const char* port_kind() const noexcept override { return "sc_out"; }

  void write(const T& value) {
    util::require(bound(), "sc_out " + name() + ": write before bind");
    signal_->write(value);
  }

  const T& read() const {
    util::require(bound(), "sc_out " + name() + ": read before bind");
    return signal_->read();
  }

  sc_event& value_changed_event() {
    util::require(bound(), "sc_out " + name() + ": unbound");
    return signal_->value_changed_event();
  }
  sc_event& default_event() { return value_changed_event(); }

  event_finder value_changed() {
    return {[this]() -> sc_event& { return value_changed_event(); }};
  }
  event_finder default_event_finder() { return value_changed(); }

  void on_elaboration() override {
    util::require(bound(), "sc_out " + name() + ": left unbound at elaboration");
  }

 private:
  sc_signal<T>* signal_ = nullptr;
};

}  // namespace nisc::sysc
