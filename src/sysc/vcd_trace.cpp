#include "sysc/vcd_trace.hpp"

#include "util/error.hpp"

namespace nisc::sysc {

vcd_trace_file::vcd_trace_file(const std::string& path, sc_simcontext& ctx)
    : ctx_(ctx), out_(path, std::ios::trunc) {
  if (!out_) throw util::RuntimeError("vcd_trace_file: cannot open " + path);
  ctx_.register_extension(this);
}

vcd_trace_file::~vcd_trace_file() {
  ctx_.unregister_extension(this);
  flush();
}

std::string vcd_trace_file::id_for(std::size_t index) {
  // Printable identifier codes: '!'..'~', multi-character for > 93 signals.
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

void vcd_trace_file::add_channel(const std::string& name, unsigned width,
                                 std::function<std::uint64_t()> sample) {
  util::require(!header_written_, "vcd_trace_file: trace() after the first run");
  Channel channel;
  channel.name = name;
  channel.id = id_for(channels_.size());
  channel.width = width;
  channel.sample = std::move(sample);
  channels_.push_back(std::move(channel));
}

void vcd_trace_file::write_header() {
  out_ << "$version niscosim vcd_trace $end\n";
  out_ << "$timescale 1 ps $end\n";
  out_ << "$scope module top $end\n";
  for (const Channel& c : channels_) {
    out_ << "$var wire " << c.width << " " << c.id << " " << c.name << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

void vcd_trace_file::on_elaboration(sc_simcontext&) {
  if (!header_written_) write_header();
}

void vcd_trace_file::sample_all(std::uint64_t now_ps) {
  timestamp_written_ = false;
  for (Channel& c : channels_) {
    std::uint64_t value = c.sample();
    if (c.written_once && value == c.last_value) continue;
    if (!timestamp_written_ && now_ps != last_timestamp_) {
      out_ << "#" << now_ps << "\n";
      last_timestamp_ = now_ps;
    }
    timestamp_written_ = true;
    if (c.width == 1) {
      out_ << (value & 1) << c.id << "\n";
    } else {
      out_ << "b";
      bool leading = true;
      for (int bit = static_cast<int>(c.width) - 1; bit >= 0; --bit) {
        bool set = (value >> bit) & 1;
        if (set) leading = false;
        if (!leading || bit == 0) out_ << (set ? '1' : '0');
      }
      out_ << " " << c.id << "\n";
    }
    c.last_value = value;
    c.written_once = true;
    ++changes_;
  }
}

void vcd_trace_file::on_cycle_end(sc_simcontext& ctx) {
  sample_all(ctx.time_stamp().ps());
}

void vcd_trace_file::on_run_end(sc_simcontext& ctx) {
  sample_all(ctx.time_stamp().ps());
  flush();
}

void vcd_trace_file::flush() { out_.flush(); }

}  // namespace nisc::sysc
