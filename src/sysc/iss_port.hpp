// iss_in<T> / iss_out<T>: the paper's kernel-level ISS communication ports
// (§3.1), plus the type-erased base the co-simulation kernel extensions use
// to route traffic by port name.
//
//  * iss_in  — carries data ISS -> SystemC. The kernel extension calls
//    deliver() when the ISS produces a value (breakpoint hit on the bound
//    guest variable, or a WRITE message from the device driver); sensitive
//    iss_processes are dispatched in the next delta cycle.
//  * iss_out — carries data SystemC -> ISS. Hardware processes write();
//    the kernel extension peeks the value when the ISS consumes it
//    (breakpoint on the destination variable, or a READ message).
//
// Like the paper's ports these are registered with the kernel, so the
// modified scheduler can find them without any user-visible wrapper.
#pragma once

#include <bit>
#include <cstring>
#include <vector>

#include "sysc/kernel.hpp"

namespace nisc::sysc {

static_assert(std::endian::native == std::endian::little,
              "iss ports serialize values in host order and assume little-endian, "
              "matching the RV32 target");

class iss_port_base : public sc_object {
 public:
  enum class Direction { In, Out };

  iss_port_base(std::string name, Direction direction)
      : sc_object(std::move(name)),
        direction_(direction),
        written_(this->name() + ".written"),
        consumed_(this->name() + ".consumed") {
    context().register_iss_port(this);
  }

  Direction direction() const noexcept { return direction_; }
  bool is_input() const noexcept { return direction_ == Direction::In; }

  /// Payload width in bytes of the port's value type.
  virtual std::size_t width_bytes() const noexcept = 0;

  /// Kernel-extension entry: stores an ISS-produced value (In ports only).
  virtual void deliver_bytes(std::span<const std::uint8_t> bytes) = 0;

  /// Kernel-extension exit: serializes the current value (any direction).
  virtual std::vector<std::uint8_t> peek_bytes() const = 0;

  /// True when a value landed (write/deliver) since the last consume_fresh().
  bool has_fresh_value() const noexcept { return fresh_; }

  /// Marks the current value as consumed by the other side and notifies
  /// consumed_event() — the hardware-side handshake that lets a producer
  /// process write the next value only after the ISS took the previous one.
  void consume_fresh() {
    if (!fresh_) return;
    fresh_ = false;
    consumed_.notify_delta();
  }

  /// Number of values that crossed the ISS boundary through this port.
  std::uint64_t transfer_count() const noexcept { return transfers_; }

  /// Delta-notified whenever a value lands in the port (deliver or write).
  sc_event& written_event() noexcept { return written_; }
  sc_event& default_event() noexcept { return written_; }

  /// Delta-notified when the other side consumed the value (handshake).
  sc_event& consumed_event() noexcept { return consumed_; }

 protected:
  void mark_transfer(bool fresh) noexcept {
    ++transfers_;
    fresh_ = fresh;
  }

 private:
  Direction direction_;
  sc_event written_;
  sc_event consumed_;
  bool fresh_ = false;
  std::uint64_t transfers_ = 0;
};

/// ISS -> SystemC data port.
template <typename T>
class iss_in : public iss_port_base {
  static_assert(std::is_trivially_copyable_v<T>, "iss_in needs trivially copyable T");

 public:
  explicit iss_in(std::string name) : iss_port_base(std::move(name), Direction::In) {}

  /// The most recently delivered value.
  const T& read() const noexcept { return value_; }

  /// Kernel-side delivery of a value produced by the ISS.
  void deliver(const T& value) {
    value_ = value;
    mark_transfer(true);
    written_event().notify_delta();
  }

  std::size_t width_bytes() const noexcept override { return sizeof(T); }

  void deliver_bytes(std::span<const std::uint8_t> bytes) override {
    util::require(bytes.size() == sizeof(T),
                  "iss_in " + name() + ": payload width mismatch");
    T value;
    std::memcpy(&value, bytes.data(), sizeof(T));
    deliver(value);
  }

  std::vector<std::uint8_t> peek_bytes() const override {
    std::vector<std::uint8_t> out(sizeof(T));
    std::memcpy(out.data(), &value_, sizeof(T));
    return out;
  }

 private:
  T value_{};
};

/// SystemC -> ISS data port.
template <typename T>
class iss_out : public iss_port_base {
  static_assert(std::is_trivially_copyable_v<T>, "iss_out needs trivially copyable T");

 public:
  explicit iss_out(std::string name) : iss_port_base(std::move(name), Direction::Out) {}

  /// Hardware-side write; the value becomes available to the ISS.
  void write(const T& value) {
    value_ = value;
    mark_transfer(true);
    written_event().notify_delta();
  }

  const T& read() const noexcept { return value_; }

  std::size_t width_bytes() const noexcept override { return sizeof(T); }

  void deliver_bytes(std::span<const std::uint8_t>) override {
    throw util::LogicError("iss_out " + name() + ": cannot deliver into an output port");
  }

  std::vector<std::uint8_t> peek_bytes() const override {
    std::vector<std::uint8_t> out(sizeof(T));
    std::memcpy(out.data(), &value_, sizeof(T));
    return out;
  }

 private:
  T value_{};
};

}  // namespace nisc::sysc
