// Simulation time, modeled on SystemC's sc_time with picosecond resolution.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace nisc::sysc {

/// Time units accepted by sc_time's constructor.
enum class sc_time_unit : std::uint8_t { SC_PS, SC_NS, SC_US, SC_MS, SC_SEC };

/// A point or span of simulated time. Internally an integral count of
/// picoseconds; value-semantic and totally ordered.
class sc_time {
 public:
  constexpr sc_time() noexcept = default;

  sc_time(double value, sc_time_unit unit) {
    util::require(value >= 0.0, "sc_time: negative time");
    ps_ = static_cast<std::uint64_t>(value * unit_scale(unit) + 0.5);
  }

  static constexpr sc_time from_ps(std::uint64_t ps) noexcept {
    sc_time t;
    t.ps_ = ps;
    return t;
  }

  static constexpr sc_time zero() noexcept { return sc_time(); }
  /// Sentinel: later than any reachable simulation time.
  static constexpr sc_time max() noexcept { return from_ps(~0ULL); }

  constexpr std::uint64_t ps() const noexcept { return ps_; }
  constexpr double to_ns() const noexcept { return static_cast<double>(ps_) / 1e3; }
  constexpr double to_us() const noexcept { return static_cast<double>(ps_) / 1e6; }
  constexpr double to_ms() const noexcept { return static_cast<double>(ps_) / 1e9; }
  constexpr double to_seconds() const noexcept { return static_cast<double>(ps_) / 1e12; }

  std::string to_string() const;

  friend constexpr auto operator<=>(const sc_time&, const sc_time&) noexcept = default;

  constexpr sc_time operator+(const sc_time& rhs) const noexcept { return from_ps(ps_ + rhs.ps_); }
  sc_time operator-(const sc_time& rhs) const {
    util::require(ps_ >= rhs.ps_, "sc_time: negative difference");
    return from_ps(ps_ - rhs.ps_);
  }
  constexpr sc_time operator*(std::uint64_t k) const noexcept { return from_ps(ps_ * k); }
  sc_time& operator+=(const sc_time& rhs) noexcept {
    ps_ += rhs.ps_;
    return *this;
  }

  static constexpr double unit_scale(sc_time_unit unit) noexcept {
    switch (unit) {
      case sc_time_unit::SC_PS: return 1.0;
      case sc_time_unit::SC_NS: return 1e3;
      case sc_time_unit::SC_US: return 1e6;
      case sc_time_unit::SC_MS: return 1e9;
      case sc_time_unit::SC_SEC: return 1e12;
    }
    return 1.0;
  }

 private:
  std::uint64_t ps_ = 0;
};

using enum sc_time_unit;

inline namespace time_literals {
constexpr sc_time operator""_ps(unsigned long long v) { return sc_time::from_ps(v); }
constexpr sc_time operator""_ns(unsigned long long v) { return sc_time::from_ps(v * 1000ULL); }
constexpr sc_time operator""_us(unsigned long long v) { return sc_time::from_ps(v * 1000000ULL); }
constexpr sc_time operator""_ms(unsigned long long v) { return sc_time::from_ps(v * 1000000000ULL); }
}  // namespace time_literals

}  // namespace nisc::sysc
