// sc_fifo<T>: bounded FIFO channel with blocking (thread-process) and
// non-blocking access, modeled on SystemC's sc_fifo.
//
// Values written become visible immediately; readers and writers blocked on
// capacity are woken by delta-notified events, so handshakes settle within
// the same timestep across delta cycles.
#pragma once

#include <deque>

#include "sysc/kernel.hpp"

namespace nisc::sysc {

template <typename T>
class sc_fifo : public sc_prim_channel {
 public:
  explicit sc_fifo(std::string name = "fifo", std::size_t capacity = 16)
      : sc_prim_channel(std::move(name)),
        capacity_(capacity),
        data_written_(this->name() + ".data_written"),
        data_read_(this->name() + ".data_read") {
    util::require(capacity_ > 0, "sc_fifo: capacity must be positive");
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t num_available() const noexcept { return buffer_.size(); }
  std::size_t num_free() const noexcept { return capacity_ - buffer_.size(); }
  bool empty() const noexcept { return buffer_.empty(); }
  bool full() const noexcept { return buffer_.size() >= capacity_; }

  /// Non-blocking write; returns false when full.
  bool nb_write(const T& value) {
    if (full()) return false;
    buffer_.push_back(value);
    data_written_.notify_delta();
    return true;
  }

  /// Non-blocking read; returns false when empty.
  bool nb_read(T& out) {
    if (empty()) return false;
    out = buffer_.front();
    buffer_.pop_front();
    data_read_.notify_delta();
    return true;
  }

  /// Blocking write (thread processes only): waits for space.
  void write(const T& value) {
    while (full()) ::nisc::sysc::wait(data_read_);
    buffer_.push_back(value);
    data_written_.notify_delta();
  }

  /// Blocking read (thread processes only): waits for data.
  T read() {
    while (empty()) ::nisc::sysc::wait(data_written_);
    T value = buffer_.front();
    buffer_.pop_front();
    data_read_.notify_delta();
    return value;
  }

  /// Event notified (delta) after each successful write / read.
  sc_event& data_written_event() noexcept { return data_written_; }
  sc_event& data_read_event() noexcept { return data_read_; }
  sc_event& default_event() noexcept { return data_written_; }

 private:
  std::size_t capacity_;
  std::deque<T> buffer_;
  sc_event data_written_;
  sc_event data_read_;
};

}  // namespace nisc::sysc
