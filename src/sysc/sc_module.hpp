// sc_module: structural container declaring processes and sensitivities.
//
// Mirrors the SystemC usage pattern:
//
//   struct Stage : sc_module {
//     explicit Stage(std::string name) : sc_module(std::move(name)) {
//       declare_method("step", &Stage::step);
//       sensitive << clk.posedge_event();
//     }
//     void step();
//     sc_in<bool> clk{"clk"};
//   };
#pragma once

#include <concepts>

#include "sysc/kernel.hpp"

namespace nisc::sysc {

class sc_module : public sc_object {
 public:
  ~sc_module() override = default;

 protected:
  explicit sc_module(std::string name) : sc_object(std::move(name)) {}

  /// Declares a run-to-completion method process from a member function.
  template <typename M>
  sc_process& declare_method(const std::string& process_name, void (M::*fn)()) {
    return declare_method(process_name, [this, fn] { (static_cast<M*>(this)->*fn)(); });
  }

  /// Declares a method process from a callable.
  sc_process& declare_method(const std::string& process_name, std::function<void()> body,
                             process_kind kind = process_kind::Method) {
    sc_process& p = context().create_method(name() + "." + process_name, std::move(body), kind);
    sensitive.attach(&p);
    return p;
  }

  /// Declares the paper's `iss_process` (§3.1): a method process dedicated
  /// to ISS traffic, dispatched only when data crosses the ISS boundary.
  template <typename M>
  sc_process& declare_iss_method(const std::string& process_name, void (M::*fn)()) {
    return declare_method(
        process_name, [this, fn] { (static_cast<M*>(this)->*fn)(); }, process_kind::IssMethod);
  }

  /// Declares a cooperative thread process from a member function.
  template <typename M>
  sc_process& declare_thread(const std::string& process_name, void (M::*fn)()) {
    return declare_thread(process_name, [this, fn] { (static_cast<M*>(this)->*fn)(); });
  }

  /// Declares a thread process from a callable.
  sc_process& declare_thread(const std::string& process_name, std::function<void()> body) {
    sc_process& p = context().create_thread(name() + "." + process_name, std::move(body));
    sensitive.attach(&p);
    return p;
  }

  /// Excludes the most recently declared process from initialization.
  void dont_initialize() {
    util::require(sensitive.attached() != nullptr, "dont_initialize: no process declared");
    sensitive.attached()->dont_initialize();
  }

 public:
  /// Streams events, channels exposing default_event(), or port event
  /// finders (clk.pos() on a not-yet-bound port) into the static sensitivity
  /// list of the most recently declared process. Finders are resolved at
  /// elaboration, after all ports are bound.
  class sensitive_proxy {
   public:
    explicit sensitive_proxy(sc_module* module) noexcept : module_(module) {}

    sensitive_proxy& operator<<(sc_event& event) {
      util::require(process_ != nullptr, "sensitive: no process declared yet");
      process_->make_sensitive(event);
      return *this;
    }

    sensitive_proxy& operator<<(event_finder finder) {
      util::require(process_ != nullptr, "sensitive: no process declared yet");
      module_->deferred_sensitivity_.emplace_back(process_, std::move(finder));
      return *this;
    }

    template <typename C>
      requires requires(C& channel) { { channel.default_event() } -> std::same_as<sc_event&>; }
    sensitive_proxy& operator<<(C& channel) {
      return (*this) << channel.default_event();
    }

    template <typename P>
      requires requires(P& port) { { port.default_event_finder() } -> std::same_as<event_finder>; }
    sensitive_proxy& operator<<(P& port) {
      return (*this) << port.default_event_finder();
    }

    void attach(sc_process* process) noexcept { process_ = process; }
    sc_process* attached() const noexcept { return process_; }

   private:
    sc_module* module_;
    sc_process* process_ = nullptr;
  };

  sensitive_proxy sensitive{this};

  void on_elaboration() override {
    for (auto& [process, finder] : deferred_sensitivity_) {
      process->make_sensitive(finder.resolve());
    }
    deferred_sensitivity_.clear();
  }

  /// Number of not-yet-resolved deferred sensitivity entries for `process`.
  /// Used by the pre-elaboration analysis passes: a process with pending
  /// entries will become sensitized once elaboration resolves them.
  std::size_t pending_sensitivity_count(const sc_process* process) const noexcept {
    std::size_t n = 0;
    for (const auto& [p, finder] : deferred_sensitivity_) {
      if (p == process) ++n;
    }
    return n;
  }

 private:
  friend class sensitive_proxy;
  std::vector<std::pair<sc_process*, event_finder>> deferred_sensitivity_;
};

}  // namespace nisc::sysc
