// sc_signal<T>: the request-update primitive channel of SystemC.
//
// Writes are deferred to the update phase; a change of value raises a delta
// notification on value_changed_event() (and posedge/negedge events for
// bool), so all readers within a delta cycle observe a consistent value.
#pragma once

#include <type_traits>

#include "sysc/kernel.hpp"

namespace nisc::sysc {

template <typename T>
class sc_signal : public sc_prim_channel {
  static_assert(std::is_copy_assignable_v<T>, "sc_signal needs copy-assignable T");

 public:
  explicit sc_signal(std::string name = "signal", T initial = T{})
      : sc_prim_channel(std::move(name)),
        current_(initial),
        next_(initial),
        changed_(this->name() + ".value_changed"),
        posedge_(this->name() + ".posedge"),
        negedge_(this->name() + ".negedge") {}

  /// Current (updated) value.
  const T& read() const noexcept {
    if (access_monitor* mon = context().monitor()) {
      mon->on_channel_read(*this, current_process(), context().delta_count());
    }
    return current_;
  }

  /// Schedules `value` to become visible in the next update phase.
  void write(const T& value) {
    if (access_monitor* mon = context().monitor()) {
      mon->on_channel_write(*this, current_process(), context().delta_count());
    }
    next_ = value;
    request_update();
  }

  /// Event notified (delta) whenever the updated value differs from the old.
  sc_event& value_changed_event() noexcept { return changed_; }
  /// Conventional default event for `sensitive <<`.
  sc_event& default_event() noexcept { return changed_; }

  /// For T == bool: notified on false->true / true->false transitions.
  sc_event& posedge_event() noexcept {
    static_assert(std::is_same_v<T, bool>, "posedge_event requires sc_signal<bool>");
    return posedge_;
  }
  sc_event& negedge_event() noexcept {
    static_assert(std::is_same_v<T, bool>, "negedge_event requires sc_signal<bool>");
    return negedge_;
  }

  /// True when the last update changed the value (SystemC's event()).
  bool event() const noexcept { return changed_delta_ == context().delta_count(); }

  void update() override {
    if (next_ == current_) return;
    const T old = current_;
    current_ = next_;
    changed_delta_ = context().delta_count() + 1;
    changed_.notify_delta();
    if constexpr (std::is_same_v<T, bool>) {
      if (!old && current_) posedge_.notify_delta();
      if (old && !current_) negedge_.notify_delta();
    } else {
      (void)old;
    }
  }

 private:
  T current_;
  T next_;
  sc_event changed_;
  sc_event posedge_;
  sc_event negedge_;
  std::uint64_t changed_delta_ = ~0ULL;
};

}  // namespace nisc::sysc
