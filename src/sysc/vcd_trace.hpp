// VCD waveform tracing (the sc_trace facility of SystemC).
//
// A vcd_trace_file registers itself as a kernel extension and samples the
// traced signals at the end of every simulation cycle, emitting IEEE-1364
// value-change-dump records that gtkwave & friends can display. Supported
// value types: bool (1-bit wire) and unsigned/signed integrals (N-bit
// vectors).
//
//   sc_simcontext ctx;
//   sc_clock clk("clk", 10_ns);
//   sc_signal<int> count("count");
//   vcd_trace_file vcd("waves.vcd", ctx);
//   vcd.trace(clk.signal(), "clk");
//   vcd.trace(count, "count");
//   ctx.run(1_us);            // samples are written as the kernel runs
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "sysc/sc_signal.hpp"

namespace nisc::sysc {

class vcd_trace_file : public kernel_extension {
 public:
  /// Opens `path` for writing and hooks into `ctx`. Throws RuntimeError if
  /// the file cannot be created.
  vcd_trace_file(const std::string& path, sc_simcontext& ctx);
  ~vcd_trace_file() override;

  vcd_trace_file(const vcd_trace_file&) = delete;
  vcd_trace_file& operator=(const vcd_trace_file&) = delete;

  /// Adds a signal to the trace set. Must be called before the first run.
  template <typename T>
  void trace(sc_signal<T>& signal, const std::string& name) {
    static_assert(std::is_same_v<T, bool> || std::is_integral_v<T>,
                  "vcd_trace_file supports bool and integral signals");
    unsigned width = std::is_same_v<T, bool> ? 1 : sizeof(T) * 8;
    add_channel(name, width, [&signal]() -> std::uint64_t {
      if constexpr (std::is_same_v<T, bool>) {
        return signal.read() ? 1 : 0;
      } else {
        return static_cast<std::uint64_t>(
            static_cast<std::make_unsigned_t<T>>(signal.read()));
      }
    });
  }

  /// Number of traced channels.
  std::size_t channel_count() const noexcept { return channels_.size(); }
  /// Number of value-change records written so far.
  std::uint64_t changes_written() const noexcept { return changes_; }

  // kernel_extension interface
  void on_elaboration(sc_simcontext& ctx) override;
  void on_cycle_end(sc_simcontext& ctx) override;
  void on_run_end(sc_simcontext& ctx) override;

  /// Flushes buffered output to disk.
  void flush();

 private:
  struct Channel {
    std::string name;
    std::string id;  // VCD identifier code
    unsigned width;
    std::function<std::uint64_t()> sample;
    std::uint64_t last_value = ~0ULL;
    bool written_once = false;
  };

  void add_channel(const std::string& name, unsigned width,
                   std::function<std::uint64_t()> sample);
  void write_header();
  void sample_all(std::uint64_t now_ps);
  static std::string id_for(std::size_t index);

  sc_simcontext& ctx_;
  std::ofstream out_;
  std::vector<Channel> channels_;
  bool header_written_ = false;
  bool timestamp_written_ = false;
  std::uint64_t last_timestamp_ = ~0ULL;
  std::uint64_t changes_ = 0;
};

}  // namespace nisc::sysc
