#include "sysc/sc_time.hpp"

#include <cstdio>

namespace nisc::sysc {

std::string sc_time::to_string() const {
  char buf[48];
  if (ps_ == ~0ULL) return "t_max";
  if (ps_ % 1000000000000ULL == 0) {
    std::snprintf(buf, sizeof(buf), "%llu s", static_cast<unsigned long long>(ps_ / 1000000000000ULL));
  } else if (ps_ % 1000000000ULL == 0) {
    std::snprintf(buf, sizeof(buf), "%llu ms", static_cast<unsigned long long>(ps_ / 1000000000ULL));
  } else if (ps_ % 1000000ULL == 0) {
    std::snprintf(buf, sizeof(buf), "%llu us", static_cast<unsigned long long>(ps_ / 1000000ULL));
  } else if (ps_ % 1000ULL == 0) {
    std::snprintf(buf, sizeof(buf), "%llu ns", static_cast<unsigned long long>(ps_ / 1000ULL));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu ps", static_cast<unsigned long long>(ps_));
  }
  return buf;
}

}  // namespace nisc::sysc
