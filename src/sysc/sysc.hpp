// Umbrella header for the niscosim SystemC-like kernel.
#pragma once

#include "sysc/iss_port.hpp"
#include "sysc/kernel.hpp"
#include "sysc/sc_clock.hpp"
#include "sysc/sc_fifo.hpp"
#include "sysc/sc_module.hpp"
#include "sysc/sc_port.hpp"
#include "sysc/sc_signal.hpp"
#include "sysc/sc_time.hpp"
