#include "ipc/fault.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nisc::ipc {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::CorruptByte: return "corrupt-byte";
    case FaultKind::Truncate: return "truncate";
    case FaultKind::Drop: return "drop";
    case FaultKind::Duplicate: return "duplicate";
    case FaultKind::Delay: return "delay";
    case FaultKind::ShortRead: return "short-read";
    case FaultKind::EagainStorm: return "eagain-storm";
    case FaultKind::Disconnect: return "disconnect";
  }
  return "?";
}

namespace {

FaultSpec make_spec(FaultKind kind, FaultDir dir, std::uint64_t nth, std::uint64_t arg,
                    std::uint64_t count = 1, std::size_t min_size = 0) {
  FaultSpec spec;
  spec.kind = kind;
  spec.dir = dir;
  spec.nth = nth;
  spec.arg = arg;
  spec.count = count;
  spec.min_size = min_size;
  return spec;
}

/// Every injection, regardless of kind, is one tick of "ipc.faults_injected"
/// plus an instant named after the fault so traces show *which* fault fired.
void note_injected(FaultKind kind) {
  static obs::Counter& c_injected = obs::counter("ipc.faults_injected");
  c_injected.add(1);
  obs::instant(fault_kind_name(kind), "ipc.fault");
}

}  // namespace

FaultPlan& FaultPlan::corrupt_send(std::uint64_t nth, std::uint64_t byte_offset) {
  specs.push_back(make_spec(FaultKind::CorruptByte, FaultDir::Send, nth, byte_offset));
  return *this;
}

FaultPlan& FaultPlan::corrupt_recv(std::uint64_t nth, std::uint64_t byte_offset) {
  specs.push_back(make_spec(FaultKind::CorruptByte, FaultDir::Recv, nth, byte_offset));
  return *this;
}

FaultPlan& FaultPlan::truncate_send(std::uint64_t nth, std::uint64_t keep_bytes) {
  specs.push_back(make_spec(FaultKind::Truncate, FaultDir::Send, nth, keep_bytes));
  return *this;
}

FaultPlan& FaultPlan::drop_send(std::uint64_t nth, std::size_t min_size) {
  specs.push_back(make_spec(FaultKind::Drop, FaultDir::Send, nth, 0, 1, min_size));
  return *this;
}

FaultPlan& FaultPlan::duplicate_send(std::uint64_t nth, std::size_t min_size) {
  specs.push_back(make_spec(FaultKind::Duplicate, FaultDir::Send, nth, 0, 1, min_size));
  return *this;
}

FaultPlan& FaultPlan::delay_send(std::uint64_t nth, std::uint64_t delay_us, std::size_t min_size) {
  specs.push_back(make_spec(FaultKind::Delay, FaultDir::Send, nth, delay_us, 1, min_size));
  return *this;
}

FaultPlan& FaultPlan::short_reads(std::uint64_t nth, std::uint64_t cap, std::uint64_t count) {
  specs.push_back(make_spec(FaultKind::ShortRead, FaultDir::Recv, nth, cap, count));
  return *this;
}

FaultPlan& FaultPlan::eagain_storm(std::uint64_t nth, std::uint64_t polls) {
  specs.push_back(make_spec(FaultKind::EagainStorm, FaultDir::Recv, nth, 0, polls));
  return *this;
}

FaultPlan& FaultPlan::disconnect_send(std::uint64_t nth, std::uint64_t keep_bytes) {
  specs.push_back(make_spec(FaultKind::Disconnect, FaultDir::Send, nth, keep_bytes));
  return *this;
}

FaultState::FaultState(const FaultPlan& plan) : rng_(plan.seed) {
  specs_.reserve(plan.specs.size());
  for (const FaultSpec& spec : plan.specs) specs_.push_back(SpecState{spec, spec.nth});
}

bool FaultState::matches(SpecState& st, std::uint64_t op) {
  const FaultSpec& spec = st.spec;
  if (op < st.nth) return false;
  const std::uint64_t offset = op - st.nth;
  if (spec.every == 0) {
    if (offset >= spec.count) return false;
  } else {
    if (offset % spec.every >= spec.count) return false;
  }
  if (spec.probability < 1.0 && !rng_.chance(spec.probability)) return false;
  return true;
}

SendVerdict FaultState::on_send(std::span<const std::uint8_t> data) {
  std::lock_guard lock(mutex_);
  const std::uint64_t op = ++stats_.send_ops;
  SendVerdict verdict;
  verdict.bytes.assign(data.begin(), data.end());
  for (SpecState& st : specs_) {
    if (st.spec.dir != FaultDir::Send) continue;
    if (!matches(st, op)) continue;
    const std::size_t size = verdict.bytes.size();
    bool injected = false;
    switch (st.spec.kind) {
      case FaultKind::CorruptByte:
        if (st.spec.arg < size) {
          verdict.bytes[st.spec.arg] ^= 0x01;
          injected = true;
        }
        break;
      case FaultKind::Truncate:
        if (size > st.spec.arg) {
          verdict.bytes.resize(static_cast<std::size_t>(st.spec.arg));
          injected = true;
        }
        break;
      case FaultKind::Disconnect:
        if (size > st.spec.arg) {
          verdict.bytes.resize(static_cast<std::size_t>(st.spec.arg));
          verdict.close_after = true;
          injected = true;
        }
        break;
      case FaultKind::Drop:
        if (size >= st.spec.min_size) {
          verdict.copies = 0;
          injected = true;
        }
        break;
      case FaultKind::Duplicate:
        if (size >= st.spec.min_size) {
          verdict.copies = 2;
          injected = true;
        }
        break;
      case FaultKind::Delay:
        if (size >= st.spec.min_size) {
          verdict.delay_us += st.spec.arg;
          injected = true;
        }
        break;
      default:
        break;
    }
    if (injected) {
      stats_.injected[static_cast<std::size_t>(st.spec.kind)]++;
      note_injected(st.spec.kind);
    } else {
      // Defer: this transfer was too small to carry the fault (a 1-byte RSP
      // ack, say) — keep the whole window armed for the next operation.
      st.nth = op + 1;
    }
  }
  return verdict;
}

bool FaultState::suppress_poll() {
  std::lock_guard lock(mutex_);
  const std::uint64_t op = ++stats_.polls;
  for (SpecState& st : specs_) {
    if (st.spec.kind != FaultKind::EagainStorm) continue;
    if (matches(st, op)) {
      stats_.injected[static_cast<std::size_t>(FaultKind::EagainStorm)]++;
      note_injected(FaultKind::EagainStorm);
      return true;
    }
  }
  return false;
}

std::size_t FaultState::recv_cap() {
  std::lock_guard lock(mutex_);
  last_recv_op_ = ++stats_.recv_ops;
  std::size_t cap = std::numeric_limits<std::size_t>::max();
  for (SpecState& st : specs_) {
    if (st.spec.kind != FaultKind::ShortRead) continue;
    if (matches(st, last_recv_op_)) {
      stats_.injected[static_cast<std::size_t>(FaultKind::ShortRead)]++;
      note_injected(FaultKind::ShortRead);
      cap = std::min(cap, static_cast<std::size_t>(std::max<std::uint64_t>(1, st.spec.arg)));
    }
  }
  return cap;
}

void FaultState::on_received(std::span<std::uint8_t> data) {
  std::lock_guard lock(mutex_);
  for (SpecState& st : specs_) {
    if (st.spec.dir != FaultDir::Recv || st.spec.kind != FaultKind::CorruptByte) continue;
    if (!matches(st, last_recv_op_)) continue;
    if (st.spec.arg < data.size()) {
      data[st.spec.arg] ^= 0x01;
      stats_.injected[static_cast<std::size_t>(FaultKind::CorruptByte)]++;
      note_injected(FaultKind::CorruptByte);
    } else {
      st.nth = last_recv_op_ + 1;
    }
  }
}

FaultStats FaultState::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::shared_ptr<FaultState> FaultyChannel::install(Channel& channel, const FaultPlan& plan) {
  auto state = std::make_shared<FaultState>(plan);
  channel.attach_faults(state);
  return state;
}

Channel FaultyChannel::wrap(Channel channel, const FaultPlan& plan) {
  install(channel, plan);
  return channel;
}

}  // namespace nisc::ipc
