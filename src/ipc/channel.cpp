#include "ipc/channel.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/error.hpp"

namespace nisc::ipc {

using util::RuntimeError;

Channel Channel::from_socket(Fd socket_fd) {
  // Duplicate so read and write sides can be closed independently.
  int dup_fd = ::dup(socket_fd.get());
  if (dup_fd < 0) throw RuntimeError(std::string("dup: ") + std::strerror(errno));
  Fd write_side(dup_fd);
  return Channel(std::move(socket_fd), std::move(write_side));
}

void Channel::send_str(const std::string& s) {
  send(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

namespace {

ChannelPair make_pipe_pair() {
  int ab[2];
  int ba[2];
  if (::pipe(ab) < 0) throw RuntimeError(std::string("pipe: ") + std::strerror(errno));
  if (::pipe(ba) < 0) {
    ::close(ab[0]);
    ::close(ab[1]);
    throw RuntimeError(std::string("pipe: ") + std::strerror(errno));
  }
  ChannelPair pair;
  pair.a = Channel(Fd(ba[0]), Fd(ab[1]));  // a reads b->a, writes a->b
  pair.b = Channel(Fd(ab[0]), Fd(ba[1]));
  return pair;
}

ChannelPair make_socketpair_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    throw RuntimeError(std::string("socketpair: ") + std::strerror(errno));
  }
  ChannelPair pair;
  pair.a = Channel::from_socket(Fd(fds[0]));
  pair.b = Channel::from_socket(Fd(fds[1]));
  return pair;
}

ChannelPair make_tcp_pair() {
  TcpListener listener(0);
  Channel client = tcp_connect(listener.port());
  Channel server = listener.accept();
  return ChannelPair{std::move(server), std::move(client)};
}

}  // namespace

ChannelPair make_channel_pair(Transport transport) {
  switch (transport) {
    case Transport::Pipe: return make_pipe_pair();
    case Transport::SocketPair: return make_socketpair_pair();
    case Transport::Tcp: return make_tcp_pair();
  }
  throw util::LogicError("make_channel_pair: unknown transport");
}

TcpListener::TcpListener(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw RuntimeError(std::string("socket: ") + std::strerror(errno));
  listen_fd_ = Fd(fd);

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw RuntimeError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 4) < 0) throw RuntimeError(std::string("listen: ") + std::strerror(errno));

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw RuntimeError(std::string("getsockname: ") + std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
}

Channel TcpListener::accept() {
  int fd;
  do {
    fd = ::accept(listen_fd_.get(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) throw RuntimeError(std::string("accept: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Channel::from_socket(Fd(fd));
}

Channel tcp_connect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw RuntimeError(std::string("socket: ") + std::strerror(errno));
  Fd sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw RuntimeError(std::string("connect: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Channel::from_socket(std::move(sock));
}

const char* transport_name(Transport transport) noexcept {
  switch (transport) {
    case Transport::Pipe: return "pipe";
    case Transport::SocketPair: return "socketpair";
    case Transport::Tcp: return "tcp";
  }
  return "?";
}

}  // namespace nisc::ipc
