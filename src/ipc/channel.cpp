#include "ipc/channel.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "ipc/capture.hpp"
#include "ipc/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nisc::ipc {

using util::RuntimeError;

namespace {

/// Registered once, then relaxed-atomic adds only (DESIGN.md §10 overhead
/// budget: the undecorated hot path gains two adds per transfer).
struct IoMetrics {
  obs::Counter& sends = obs::counter("ipc.sends");
  obs::Counter& bytes_sent = obs::counter("ipc.bytes_sent");
  obs::Counter& recvs = obs::counter("ipc.recvs");
  obs::Counter& bytes_received = obs::counter("ipc.bytes_received");
};

IoMetrics& io_metrics() {
  static IoMetrics metrics;
  return metrics;
}

}  // namespace

void Channel::attach_observer(std::shared_ptr<WireObserver> observer) noexcept {
  std::atomic_store_explicit(&observer_, std::move(observer), std::memory_order_release);
}

std::shared_ptr<WireObserver> Channel::observer() const noexcept { return load_observer(); }

std::shared_ptr<WireObserver> Channel::load_observer() const noexcept {
  return std::atomic_load_explicit(&observer_, std::memory_order_acquire);
}

Channel Channel::from_socket(Fd socket_fd) {
  // Duplicate so read and write sides can be closed independently.
  int dup_fd = ::dup(socket_fd.get());
  if (dup_fd < 0) throw RuntimeError(std::string("dup: ") + std::strerror(errno));
  Fd write_side(dup_fd);
  return Channel(std::move(socket_fd), std::move(write_side));
}

void Channel::set_io_timeout(int timeout_ms) {
  io_timeout_ms_ = timeout_ms;
  // A deadline is only enforceable when a wait can EAGAIN out to poll; the
  // unlimited default keeps the seed's one-syscall blocking hot path.
  if (timeout_ms >= 0) {
    if (read_fd_.valid()) set_nonblocking(read_fd_, true);
    if (write_fd_.valid()) set_nonblocking(write_fd_, true);
  }
}

void Channel::send(std::span<const std::uint8_t> data) {
  obs::ScopedSpan span("ipc.send", "ipc", "bytes", data.size());
  IoMetrics& metrics = io_metrics();
  metrics.sends.add(1);
  metrics.bytes_sent.add(data.size());
  const std::shared_ptr<WireObserver> observer = load_observer();
  if (!faults_) {
    write_all(write_fd_, data, io_timeout_ms_);
    if (capture_) capture_->record(CaptureDir::Tx, data);
    if (observer) observer->on_wire(CaptureDir::Tx, data);
    return;
  }
  SendVerdict verdict = faults_->on_send(data);
  if (verdict.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(verdict.delay_us));
  }
  for (int i = 0; i < verdict.copies; ++i) {
    write_all(write_fd_, verdict.bytes, io_timeout_ms_);
    if (capture_) capture_->record(CaptureDir::Tx, verdict.bytes);
    if (observer) observer->on_wire(CaptureDir::Tx, verdict.bytes);
  }
  if (verdict.close_after) close();
}

void Channel::send_str(const std::string& s) {
  send(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Channel::recv_exact(std::span<std::uint8_t> out) {
  obs::ScopedSpan span("ipc.recv", "ipc", "bytes", out.size());
  IoMetrics& metrics = io_metrics();
  metrics.recvs.add(1);
  metrics.bytes_received.add(out.size());
  const std::shared_ptr<WireObserver> observer = load_observer();
  if (!faults_) {
    read_exact(read_fd_, out, io_timeout_ms_);
    if (capture_) capture_->record(CaptureDir::Rx, out);
    if (observer) observer->on_wire(CaptureDir::Rx, out);
    return;
  }
  // A short-read fault splits the transfer; recv_exact still fills `out`,
  // the split only exercises the peer's partial-write tolerance.
  const std::size_t cap = faults_->recv_cap();
  if (cap < out.size()) {
    read_exact(read_fd_, out.first(cap), io_timeout_ms_);
    read_exact(read_fd_, out.subspan(cap), io_timeout_ms_);
  } else {
    read_exact(read_fd_, out, io_timeout_ms_);
  }
  faults_->on_received(out);
  if (capture_) capture_->record(CaptureDir::Rx, out);
  if (observer) observer->on_wire(CaptureDir::Rx, out);
}

void Channel::notify_observer(std::string_view tag) {
  const std::shared_ptr<WireObserver> observer = load_observer();
  if (observer) observer->on_wire_event(tag);
}

bool Channel::readable(int timeout_ms) {
  if (faults_ && faults_->suppress_poll()) {
    // Storm in progress: report "nothing there" but do not busy-spin the
    // caller's poll loop.
    if (timeout_ms != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(std::min(timeout_ms < 0 ? 1 : timeout_ms, 1)));
    }
    return false;
  }
  return poll_readable(read_fd_, timeout_ms);
}

std::size_t Channel::recv_some(std::span<std::uint8_t> out) {
  const std::shared_ptr<WireObserver> observer = load_observer();
  if (!faults_) {
    std::size_t n = read_some_nonblocking(read_fd_, out);
    if (n > 0 && capture_) capture_->record(CaptureDir::Rx, out.first(n));
    if (n > 0 && observer) observer->on_wire(CaptureDir::Rx, out.first(n));
    if (n > 0) {
      IoMetrics& metrics = io_metrics();
      metrics.recvs.add(1);
      metrics.bytes_received.add(n);
    }
    return n;
  }
  const std::size_t cap = faults_->recv_cap();
  std::size_t n = read_some_nonblocking(read_fd_, out.first(std::min(cap, out.size())));
  if (n > 0) {
    faults_->on_received(out.first(n));
    if (capture_) capture_->record(CaptureDir::Rx, out.first(n));
    if (observer) observer->on_wire(CaptureDir::Rx, out.first(n));
    IoMetrics& metrics = io_metrics();
    metrics.recvs.add(1);
    metrics.bytes_received.add(n);
  }
  return n;
}

namespace {

ChannelPair make_pipe_pair() {
  int ab[2];
  int ba[2];
  if (::pipe(ab) < 0) throw RuntimeError(std::string("pipe: ") + std::strerror(errno));
  if (::pipe(ba) < 0) {
    ::close(ab[0]);
    ::close(ab[1]);
    throw RuntimeError(std::string("pipe: ") + std::strerror(errno));
  }
  ChannelPair pair;
  pair.a = Channel(Fd(ba[0]), Fd(ab[1]));  // a reads b->a, writes a->b
  pair.b = Channel(Fd(ab[0]), Fd(ba[1]));
  return pair;
}

ChannelPair make_socketpair_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    throw RuntimeError(std::string("socketpair: ") + std::strerror(errno));
  }
  ChannelPair pair;
  pair.a = Channel::from_socket(Fd(fds[0]));
  pair.b = Channel::from_socket(Fd(fds[1]));
  return pair;
}

ChannelPair make_tcp_pair() {
  TcpListener listener(0);
  Channel client = tcp_connect(listener.port());
  Channel server = listener.accept(30000);
  return ChannelPair{std::move(server), std::move(client)};
}

/// Applies the post-connect socket options shared by both TCP paths.
Channel finish_tcp_socket(Fd sock) {
  int one = 1;
  ::setsockopt(sock.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // The socket stays blocking (connect() never returns EINPROGRESS);
  // set_io_timeout flips it non-blocking when a deadline is installed.
  return Channel::from_socket(std::move(sock));
}

}  // namespace

ChannelPair make_channel_pair(Transport transport) {
  switch (transport) {
    case Transport::Pipe: return make_pipe_pair();
    case Transport::SocketPair: return make_socketpair_pair();
    case Transport::Tcp: return make_tcp_pair();
  }
  throw util::LogicError("make_channel_pair: unknown transport");
}

TcpListener::TcpListener(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw RuntimeError(std::string("socket: ") + std::strerror(errno));
  listen_fd_ = Fd(fd);

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw RuntimeError(std::string("bind port ") + std::to_string(port) + ": " +
                       std::strerror(errno));
  }
  if (::listen(fd, 4) < 0) throw RuntimeError(std::string("listen: ") + std::strerror(errno));

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw RuntimeError(std::string("getsockname: ") + std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
}

Channel TcpListener::accept(int timeout_ms) {
  if (!poll_readable(listen_fd_, timeout_ms)) {
    throw RuntimeError("accept: timed out after " + std::to_string(timeout_ms) +
                       " ms waiting for a peer on port " + std::to_string(port_));
  }
  int fd;
  do {
    fd = ::accept(listen_fd_.get(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) throw RuntimeError(std::string("accept: ") + std::strerror(errno));
  return finish_tcp_socket(Fd(fd));
}

Channel TcpListener::try_accept() {
  if (!poll_readable(listen_fd_, 0)) return Channel();
  return accept(0);
}

namespace {

/// One connect attempt; returns an invalid Fd on ECONNREFUSED (retryable).
Fd tcp_connect_once(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw RuntimeError(std::string("socket: ") + std::strerror(errno));
  Fd sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == ECONNREFUSED) return Fd();
    throw RuntimeError(std::string("connect port ") + std::to_string(port) + ": " +
                       std::strerror(errno));
  }
  return sock;
}

}  // namespace

Channel tcp_connect(std::uint16_t port) {
  Fd sock = tcp_connect_once(port);
  if (!sock.valid()) {
    throw RuntimeError("connect port " + std::to_string(port) + ": Connection refused");
  }
  return finish_tcp_socket(std::move(sock));
}

Channel tcp_connect(std::uint16_t port, const RetryPolicy& policy) {
  Backoff backoff(policy);
  for (;;) {
    Fd sock = tcp_connect_once(port);
    if (sock.valid()) return finish_tcp_socket(std::move(sock));
    int delay = backoff.next_delay_ms();
    if (delay < 0) {
      throw RuntimeError("connect port " + std::to_string(port) + ": Connection refused after " +
                         std::to_string(backoff.attempts_made()) + " attempt(s)");
    }
    backoff_sleep_ms(delay);
  }
}

const char* transport_name(Transport transport) noexcept {
  switch (transport) {
    case Transport::Pipe: return "pipe";
    case Transport::SocketPair: return "socketpair";
    case Transport::Tcp: return "tcp";
  }
  return "?";
}

}  // namespace nisc::ipc
