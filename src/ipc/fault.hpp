// Fault-injection transport layer: a seeded, deterministic decorator over
// ipc::Channel driven by a declarative FaultPlan.
//
// FaultyChannel::wrap(channel, plan) returns the same Channel with a
// FaultState installed; every subsequent send()/recv_exact()/recv_some()/
// readable() call consults the plan. Faults are triggered by per-direction
// operation counters (each Channel API call is one operation), so a given
// (plan, seed) pair replays the exact same failure on every run — the
// property the fault-matrix test and the CI seed sweep rely on. With no
// plan installed the only cost on the I/O hot path is one null-pointer
// check per call.
//
// Fault kinds (DESIGN.md §9 documents the field semantics in full):
//   CorruptByte  flip one bit of byte `arg` of the matched transfer
//   Truncate     keep only the first `arg` bytes of the matched send
//   Drop         swallow the matched send entirely
//   Duplicate    send the matched transfer twice
//   Delay        sleep `arg` microseconds before the matched send
//   ShortRead    cap recv_some() to `arg` bytes for the matched ops
//   EagainStorm  readable()/recv_some() report "nothing there" for the
//                matched polls even when data is pending
//   Disconnect   send the first `arg` bytes of the matched transfer, then
//                close the channel mid-frame
//
// CorruptByte/Truncate/Disconnect *defer* when the matched transfer is
// shorter than `arg` (+1 byte): the fault stays armed for the next
// operation. This lets a plan target protocol frames while skipping
// single-byte RSP acks deterministically. Drop/Duplicate/Delay use
// `min_size` for the same purpose.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "ipc/channel.hpp"
#include "util/rng.hpp"

namespace nisc::ipc {

enum class FaultKind : std::uint8_t {
  CorruptByte,
  Truncate,
  Drop,
  Duplicate,
  Delay,
  ShortRead,
  EagainStorm,
  Disconnect,
};

/// Direction relative to the wrapped endpoint.
enum class FaultDir : std::uint8_t { Send, Recv };

const char* fault_kind_name(FaultKind kind) noexcept;

struct FaultSpec {
  FaultKind kind = FaultKind::Drop;
  FaultDir dir = FaultDir::Send;
  /// 1-based operation index that first matches.
  std::uint64_t nth = 1;
  /// 0: the spec fires for `count` consecutive ops starting at `nth`, once.
  /// k > 0: the window repeats every k operations.
  std::uint64_t every = 0;
  /// Operations affected per window (storm/short-read lengths).
  std::uint64_t count = 1;
  /// Kind-specific argument: byte offset (CorruptByte), bytes kept
  /// (Truncate/Disconnect), microseconds (Delay), read cap (ShortRead).
  std::uint64_t arg = 0;
  /// Transfers smaller than this defer the fault to the next operation
  /// (Drop/Duplicate/Delay; CorruptByte/Truncate/Disconnect already defer
  /// via `arg`).
  std::size_t min_size = 0;
  /// Probability that a matched operation actually faults (seeded draw).
  double probability = 1.0;
};

struct FaultPlan {
  std::uint64_t seed = 0x1CEB00DAULL;
  std::vector<FaultSpec> specs;

  bool empty() const noexcept { return specs.empty(); }

  // Builder helpers for the common cases (all return *this for chaining).
  FaultPlan& corrupt_send(std::uint64_t nth, std::uint64_t byte_offset);
  FaultPlan& corrupt_recv(std::uint64_t nth, std::uint64_t byte_offset);
  FaultPlan& truncate_send(std::uint64_t nth, std::uint64_t keep_bytes);
  FaultPlan& drop_send(std::uint64_t nth, std::size_t min_size = 2);
  FaultPlan& duplicate_send(std::uint64_t nth, std::size_t min_size = 2);
  FaultPlan& delay_send(std::uint64_t nth, std::uint64_t delay_us, std::size_t min_size = 0);
  FaultPlan& short_reads(std::uint64_t nth, std::uint64_t cap, std::uint64_t count);
  FaultPlan& eagain_storm(std::uint64_t nth, std::uint64_t polls);
  FaultPlan& disconnect_send(std::uint64_t nth, std::uint64_t keep_bytes);
};

/// Counts of injected faults, by kind (indexed by FaultKind).
struct FaultStats {
  std::uint64_t injected[8] = {};
  std::uint64_t send_ops = 0;
  std::uint64_t recv_ops = 0;
  std::uint64_t polls = 0;

  std::uint64_t total_injected() const noexcept {
    std::uint64_t sum = 0;
    for (std::uint64_t n : injected) sum += n;
    return sum;
  }
};

/// What Channel::send must do with one outgoing transfer.
struct SendVerdict {
  std::vector<std::uint8_t> bytes;  ///< possibly mutated/truncated payload
  int copies = 1;                   ///< 0 = drop, 2 = duplicate
  std::uint64_t delay_us = 0;
  bool close_after = false;         ///< mid-frame disconnect
};

/// Shared, thread-safe runtime state compiled from a FaultPlan. Installed
/// into a Channel; consulted by its I/O methods.
class FaultState {
 public:
  explicit FaultState(const FaultPlan& plan);

  SendVerdict on_send(std::span<const std::uint8_t> data);
  /// True when an EAGAIN storm is suppressing readability right now.
  bool suppress_poll();
  /// Counts one receive operation; returns the byte cap for it (SIZE_MAX =
  /// uncapped). Call before the read, then on_received() with the data.
  std::size_t recv_cap();
  /// Counts one completed receive and applies recv-side corruption.
  void on_received(std::span<std::uint8_t> data);

  FaultStats stats() const;

 private:
  struct SpecState {
    FaultSpec spec;
    std::uint64_t nth;  ///< mutable first-match index (defers bump it)
  };

  bool matches(SpecState& st, std::uint64_t op);

  mutable std::mutex mutex_;
  std::vector<SpecState> specs_;
  util::Rng rng_;
  FaultStats stats_;
  std::uint64_t last_recv_op_ = 0;
};

/// The decorator entry point.
class FaultyChannel {
 public:
  /// Installs `plan` on `channel`; returns the shared state handle (keep it
  /// to read stats; the channel co-owns it).
  static std::shared_ptr<FaultState> install(Channel& channel, const FaultPlan& plan);

  /// Decorates and returns the channel (value-style composition).
  static Channel wrap(Channel channel, const FaultPlan& plan);
};

}  // namespace nisc::ipc
