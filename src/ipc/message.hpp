// Driver-Kernel co-simulation message protocol (paper §4.2).
//
// Messages exchanged between the device driver in the OS running on the ISS
// and the SystemC kernel carry: Packet Size, Type (READ or WRITE), and a
// sequence of (DataSize_i, Data_i, SCPort_i) triples naming the iss_in /
// iss_out ports involved. We add two frame types the paper describes in
// prose but does not name: ReadReply (kernel -> driver, the data answering a
// READ) and Interrupt (kernel -> driver on the dedicated interrupt socket).
//
// Wire format (all integers little-endian):
//   u32 packet_size      -- bytes following this field
//   u8  type             -- MsgType
//   u16 item_count
//   repeated item_count times:
//     u16 port_len, port bytes (SCPort_i)
//     u32 data_size, data bytes (DataSize_i, Data_i; empty for READ requests)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ipc/channel.hpp"
#include "util/error.hpp"

namespace nisc::ipc {

enum class MsgType : std::uint8_t {
  Read = 0,       ///< driver asks the kernel for the value of iss_out ports
  Write = 1,      ///< driver pushes data into iss_in ports
  ReadReply = 2,  ///< kernel answers a Read with the port values
  Interrupt = 3,  ///< kernel notifies the driver of a device interrupt
};

const char* msg_type_name(MsgType type) noexcept;

/// One (SCPort, Data) element of a message.
struct MsgItem {
  std::string port;                ///< SystemC port name (SCPort_i)
  std::vector<std::uint8_t> data;  ///< payload (DataSize_i bytes)

  bool operator==(const MsgItem&) const = default;
};

/// A complete driver<->kernel message.
struct DriverMessage {
  MsgType type = MsgType::Read;
  std::vector<MsgItem> items;

  bool operator==(const DriverMessage&) const = default;

  /// Convenience: WRITE of one 32-bit little-endian word to `port`.
  static DriverMessage write_u32(const std::string& port, std::uint32_t value);
  /// Convenience: READ request for one port.
  static DriverMessage read_request(const std::string& port);
  /// Convenience: interrupt notification for IRQ line `irq`.
  static DriverMessage interrupt(std::uint32_t irq);

  /// For Interrupt messages: decodes the IRQ number; nullopt otherwise.
  std::optional<std::uint32_t> irq() const;
};

/// Serializes the message to its wire format.
std::vector<std::uint8_t> encode_message(const DriverMessage& msg);

/// Parses one message from `bytes` (which must be exactly one frame *body*,
/// i.e. without the leading packet_size field).
util::Result<DriverMessage> decode_message_body(std::span<const std::uint8_t> body);

/// Writes one framed message to the channel.
void send_message(Channel& channel, const DriverMessage& msg);

/// Blocking read of one framed message.
DriverMessage recv_message(Channel& channel);

/// Non-blocking probe: returns a message only if one has started arriving
/// (then blocks for its remainder — senders write whole frames atomically).
std::optional<DriverMessage> try_recv_message(Channel& channel);

/// Upper bound on accepted frame bodies; guards against corrupt size fields.
inline constexpr std::uint32_t kMaxMessageBody = 16u << 20;

}  // namespace nisc::ipc
