#include "ipc/capture.hpp"

#include <sstream>

#include "ipc/message.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/hex.hpp"

namespace nisc::ipc {

WireCapture::WireCapture(std::string label, std::size_t max_frames)
    : label_(std::move(label)), max_frames_(max_frames == 0 ? 1 : max_frames) {}

void WireCapture::record(CaptureDir dir, std::span<const std::uint8_t> bytes) {
  std::lock_guard lock(mutex_);
  ring_.push_back(Entry{dir, next_seq_++, {bytes.begin(), bytes.end()}});
  while (ring_.size() > max_frames_) ring_.pop_front();
}

std::vector<std::uint8_t> WireCapture::dump() const {
  std::lock_guard lock(mutex_);
  std::vector<std::uint8_t> out;
  for (const Entry& entry : ring_) {
    DriverMessage msg;
    msg.type = MsgType::Write;
    msg.items.push_back(MsgItem{
        label_ + (entry.dir == CaptureDir::Tx ? ".tx#" : ".rx#") + std::to_string(entry.seq),
        entry.bytes});
    std::vector<std::uint8_t> frame = encode_message(msg);
    out.insert(out.end(), frame.begin(), frame.end());
  }
  return out;
}

std::string WireCapture::render_text(std::size_t max_bytes_per_entry) const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  for (const Entry& entry : ring_) {
    out << label_ << (entry.dir == CaptureDir::Tx ? " tx#" : " rx#") << entry.seq << " ("
        << entry.bytes.size() << " bytes)";
    const std::size_t shown = std::min(entry.bytes.size(), max_bytes_per_entry);
    if (shown > 0) {
      out << ' '
          << util::hex_encode(std::span<const std::uint8_t>(entry.bytes.data(), shown));
      if (shown < entry.bytes.size()) out << "...";
    }
    out << '\n';
  }
  return out.str();
}

std::size_t WireCapture::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t WireCapture::total_recorded() const {
  std::lock_guard lock(mutex_);
  return next_seq_;
}

ObsTap::ObsTap(const std::string& label, TraceIdPeeker peeker, std::string_view flow_name,
               std::string_view flow_cat)
    : tx_bytes_(obs::counter("ipc." + label + ".tx_bytes")),
      tx_transfers_(obs::counter("ipc." + label + ".tx_transfers")),
      rx_bytes_(obs::counter("ipc." + label + ".rx_bytes")),
      rx_transfers_(obs::counter("ipc." + label + ".rx_transfers")),
      event_name_(obs::intern("ipc." + label + ".event")),
      flow_name_(obs::intern(flow_name)),
      flow_cat_(obs::intern(flow_cat)),
      peeker_(std::move(peeker)) {}

void ObsTap::on_wire(CaptureDir dir, std::span<const std::uint8_t> bytes) {
  if (dir == CaptureDir::Tx) {
    tx_bytes_.add(bytes.size());
    tx_transfers_.add(1);
  } else {
    rx_bytes_.add(bytes.size());
    rx_transfers_.add(1);
  }
  if (peeker_ && obs::tracing_enabled()) {
    if (const std::uint64_t id = peeker_(dir, bytes)) obs::flow_step(flow_name_, flow_cat_, id);
  }
}

void ObsTap::on_wire_event(std::string_view tag) {
  if (obs::tracing_enabled()) obs::emit('i', event_name_, obs::intern(tag));
}

}  // namespace nisc::ipc
