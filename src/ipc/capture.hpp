// Wire-capture ring buffer: the last N transfers seen on a channel, kept
// for post-mortem diagnosis when a co-simulation scheme dies on its IPC
// boundary.
//
// Each recorded transfer is one send()/recv() on the channel, tagged with
// its direction and a monotonically increasing sequence number. dump()
// re-frames the ring as a stream of Driver-Kernel wire frames (one WRITE
// message per transfer, port "<label>.tx#<seq>" / "<label>.rx#<seq>", data =
// the raw bytes) — exactly the concatenated-frame format that
// `cosim_lint --frames` validates, so a crash dump from any scheme (RSP
// traffic included) can be inspected with the analysis tooling from PR 1.
//
// Thread-safe: the channel's reader and writer threads record concurrently.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace nisc::obs {
class Counter;
}  // namespace nisc::obs

namespace nisc::ipc {

enum class CaptureDir : std::uint8_t { Tx, Rx };

/// Live tap on a channel's wire traffic. Attached via
/// Channel::attach_observer; sees exactly the bytes the capture ring would
/// record (post-fault-injection reality, not intent) plus out-of-band
/// endpoint events (e.g. "quiesce"). Implementations must be thread-safe:
/// the channel's reader and writer threads call in concurrently.
class WireObserver {
 public:
  virtual ~WireObserver() = default;
  virtual void on_wire(CaptureDir dir, std::span<const std::uint8_t> bytes) = 0;
  virtual void on_wire_event(std::string_view tag) { (void)tag; }
};

class WireCapture {
 public:
  /// `label` prefixes the pseudo-port names in dumps; the ring keeps the
  /// most recent `max_frames` transfers.
  explicit WireCapture(std::string label, std::size_t max_frames = 32);

  void record(CaptureDir dir, std::span<const std::uint8_t> bytes);

  /// Serializes the ring, oldest first, as concatenated Driver-Kernel
  /// frames (`u32 size | body`), readable by `cosim_lint --frames` and
  /// analysis::check_frames.
  std::vector<std::uint8_t> dump() const;

  /// One-line-per-transfer human rendering (direction, size, hex prefix).
  std::string render_text(std::size_t max_bytes_per_entry = 16) const;

  const std::string& label() const noexcept { return label_; }
  std::size_t size() const;
  bool empty() const { return size() == 0; }
  std::uint64_t total_recorded() const;

 private:
  struct Entry {
    CaptureDir dir;
    std::uint64_t seq;
    std::vector<std::uint8_t> bytes;
  };

  mutable std::mutex mutex_;
  std::string label_;
  std::size_t max_frames_;
  std::uint64_t next_seq_ = 0;
  std::deque<Entry> ring_;
};

/// WireObserver feeding the obs layer: per-direction transfer/byte counters
/// ("ipc.<label>.tx_bytes", ".tx_transfers", ".rx_bytes", ".rx_transfers")
/// plus — when a peeker is installed — a Chrome-trace flow-step event for
/// every transfer carrying a correlation id, which is how wire traffic
/// joins the cross-process flow arrows of DESIGN.md §10.5.
///
/// The counters use relaxed atomics and the flow emit goes to the calling
/// thread's own trace ring, so attaching a tap keeps the channel's
/// thread-safety story unchanged. The peeker runs on the I/O hot path;
/// implementations must be cheap, non-throwing, and return 0 for transfers
/// without an id (partial frames included — Rx traffic arrives split into
/// header/body chunks).
class ObsTap : public WireObserver {
 public:
  using TraceIdPeeker =
      std::function<std::uint64_t(CaptureDir dir, std::span<const std::uint8_t> bytes)>;

  /// `label` namespaces the counters; `flow_name`/`flow_cat` are the trace
  /// flow-event identity and must match the flow_begin/flow_end pair the
  /// protocol emits (they are interned, so any string works).
  explicit ObsTap(const std::string& label, TraceIdPeeker peeker = {},
                  std::string_view flow_name = "wire.flow", std::string_view flow_cat = "flow");

  void on_wire(CaptureDir dir, std::span<const std::uint8_t> bytes) override;
  void on_wire_event(std::string_view tag) override;

 private:
  obs::Counter& tx_bytes_;
  obs::Counter& tx_transfers_;
  obs::Counter& rx_bytes_;
  obs::Counter& rx_transfers_;
  const char* event_name_;  ///< interned "ipc.<label>.event"
  const char* flow_name_;
  const char* flow_cat_;
  TraceIdPeeker peeker_;
};

/// Fans one channel's observer slot out to several observers (a Channel
/// holds exactly one) — e.g. the supervisor's ObsTap plus a live
/// conformance monitor on the same socket. Children are fixed at
/// construction; thread-safety is each child's own concern, exactly as if
/// it were attached directly.
class FanoutWireObserver : public WireObserver {
 public:
  explicit FanoutWireObserver(std::vector<std::shared_ptr<WireObserver>> children)
      : children_(std::move(children)) {}

  void on_wire(CaptureDir dir, std::span<const std::uint8_t> bytes) override {
    for (const auto& child : children_) {
      if (child) child->on_wire(dir, bytes);
    }
  }

  void on_wire_event(std::string_view tag) override {
    for (const auto& child : children_) {
      if (child) child->on_wire_event(tag);
    }
  }

 private:
  std::vector<std::shared_ptr<WireObserver>> children_;
};

}  // namespace nisc::ipc
