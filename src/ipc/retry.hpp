// RetryPolicy: bounded retries with exponential backoff and seeded jitter.
//
// Used by the TCP connect/accept paths in channel.cpp (a Driver-Kernel
// peer may race its listener at startup) and available to any caller that
// must survive transient IPC failures. Jitter is drawn from util::Rng so a
// given (policy, seed) pair always produces the same delay sequence —
// failure-injection runs stay reproducible.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace nisc::ipc {

/// Default jitter seed: the fault-matrix seed (NISC_FAULT_SEED, read once
/// and cached) mixed into the golden-ratio constant, so fault-matrix and
/// crash-matrix runs get bit-identical backoff schedules across CI reruns
/// of the same seed. Without the variable this is the historical constant.
std::uint64_t default_retry_seed() noexcept;

struct RetryPolicy {
  /// Total attempts (the first try included). 1 disables retrying.
  int max_attempts = 5;
  /// Delay before the second attempt.
  int initial_backoff_ms = 2;
  /// Each subsequent delay is the previous one times this factor.
  double multiplier = 2.0;
  /// Upper bound on any single delay.
  int max_backoff_ms = 100;
  /// Fraction of the delay drawn uniformly at random and *added* to it
  /// (0.25 -> delays land in [d, 1.25 d]): decorrelates peers that fail
  /// together without ever retrying early.
  double jitter = 0.25;
  /// Seed for the jitter stream (see default_retry_seed()).
  std::uint64_t seed = default_retry_seed();
};

/// Iterates the delay schedule of a RetryPolicy.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy)
      : policy_(policy), rng_(policy.seed), next_ms_(policy.initial_backoff_ms) {}

  /// True while another attempt is allowed.
  bool attempts_left() const noexcept { return attempt_ < policy_.max_attempts; }

  /// Records an attempt; returns the delay (ms) to sleep before the next
  /// one, or -1 when the attempt budget is exhausted.
  int next_delay_ms();

  int attempts_made() const noexcept { return attempt_; }

 private:
  RetryPolicy policy_;
  util::Rng rng_;
  int attempt_ = 0;
  double next_ms_;
};

/// Sleeps for `ms` milliseconds (EINTR-proof).
void backoff_sleep_ms(int ms);

}  // namespace nisc::ipc
