// RAII file-descriptor wrapper and blocking/non-blocking I/O helpers.
//
// All inter-simulator traffic in niscosim (GDB remote-serial-protocol
// streams, Driver-Kernel data/interrupt sockets) flows through real kernel
// file descriptors, mirroring the paper's pipe/socket IPC.
//
// Every potentially-blocking helper takes a timeout so no IPC path can hang
// the co-simulation forever: timeouts are tracked as monotonic deadlines,
// so EINTR retries and partial transfers never extend the total wait.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace nisc::ipc {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() noexcept = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  explicit operator bool() const noexcept { return valid(); }

  /// Releases ownership without closing.
  int release() noexcept { return std::exchange(fd_, -1); }

  /// Closes the descriptor (idempotent).
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Writes all of `data`, retrying on EINTR and short writes. Throws
/// RuntimeError on error, EOF (peer closed), or when the whole transfer has
/// not completed within `timeout_ms` (< 0 waits forever).
void write_all(const Fd& fd, std::span<const std::uint8_t> data, int timeout_ms = -1);

/// Reads exactly `out.size()` bytes. Throws RuntimeError on error/EOF or
/// when the whole transfer has not completed within `timeout_ms`.
void read_exact(const Fd& fd, std::span<std::uint8_t> out, int timeout_ms = -1);

/// Returns true when at least one byte is readable without blocking.
/// `timeout_ms` < 0 blocks indefinitely; 0 polls. The timeout is a hard
/// deadline: EINTR retries re-poll only for the remaining time.
bool poll_readable(const Fd& fd, int timeout_ms);

/// Non-blocking read of up to `out.size()` bytes. Returns the number of
/// bytes read (0 if nothing pending). Throws on error or EOF.
std::size_t read_some_nonblocking(const Fd& fd, std::span<std::uint8_t> out);

/// Marks the descriptor O_NONBLOCK (or clears it).
void set_nonblocking(const Fd& fd, bool nonblocking);

}  // namespace nisc::ipc
