// Byte-stream channels: pipes, socketpairs, and TCP — the transports the
// paper's two co-simulation schemes use (a pipe for GDB-Kernel, sockets on
// the data port 4444 / interrupt port 4445 for Driver-Kernel).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ipc/fd.hpp"

namespace nisc::ipc {

/// A bidirectional byte-stream endpoint. Reading and writing may happen from
/// different threads (one reader, one writer).
class Channel {
 public:
  Channel() = default;
  Channel(Fd read_fd, Fd write_fd) : read_fd_(std::move(read_fd)), write_fd_(std::move(write_fd)) {}

  /// Constructs from a single full-duplex descriptor (socket).
  static Channel from_socket(Fd socket_fd);

  bool valid() const noexcept { return read_fd_.valid() && write_fd_.valid(); }

  const Fd& read_fd() const noexcept { return read_fd_; }
  const Fd& write_fd() const noexcept { return write_fd_; }

  void send(std::span<const std::uint8_t> data) { write_all(write_fd_, data); }
  void send_str(const std::string& s);
  void recv_exact(std::span<std::uint8_t> out) { read_exact(read_fd_, out); }
  bool readable(int timeout_ms = 0) { return poll_readable(read_fd_, timeout_ms); }
  std::size_t recv_some(std::span<std::uint8_t> out) { return read_some_nonblocking(read_fd_, out); }

  /// Closes both directions.
  void close() noexcept {
    read_fd_.reset();
    write_fd_.reset();
  }

 private:
  Fd read_fd_;
  Fd write_fd_;
};

/// Two channel endpoints wired back-to-back.
struct ChannelPair {
  Channel a;
  Channel b;
};

/// Transport flavor for make_channel_pair.
enum class Transport { Pipe, SocketPair, Tcp };

/// Creates a connected pair of endpoints over the requested transport.
/// Pipe uses two pipe(2) calls (matching the paper's GDB-Kernel IPC);
/// SocketPair uses socketpair(2); Tcp opens a loopback listener on an
/// ephemeral port and connects to it (matching the Driver-Kernel socket
/// style without hard-coding 4444/4445, which tests could not share).
ChannelPair make_channel_pair(Transport transport);

/// Loopback TCP listener for explicit Driver-Kernel style setups.
class TcpListener {
 public:
  /// Binds 127.0.0.1:`port`; port 0 picks an ephemeral port.
  explicit TcpListener(std::uint16_t port);

  std::uint16_t port() const noexcept { return port_; }

  /// Blocks until a peer connects; returns the accepted channel.
  Channel accept();

 private:
  Fd listen_fd_;
  std::uint16_t port_ = 0;
};

/// Connects to a loopback TCP listener.
Channel tcp_connect(std::uint16_t port);

/// Human-readable transport name (for bench output).
const char* transport_name(Transport transport) noexcept;

}  // namespace nisc::ipc
