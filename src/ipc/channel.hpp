// Byte-stream channels: pipes, socketpairs, and TCP — the transports the
// paper's two co-simulation schemes use (a pipe for GDB-Kernel, sockets on
// the data port 4444 / interrupt port 4445 for Driver-Kernel).
//
// Every channel carries three optional decorations, all null by default so
// the undecorated hot path costs one pointer check per I/O call:
//   - a FaultState (ipc/fault.hpp): a seeded fault-injection plan that can
//     corrupt, truncate, drop, duplicate, delay, or cut transfers;
//   - a WireCapture (ipc/capture.hpp): a ring buffer of the last N
//     transfers, dumpable as a `cosim_lint --frames` post-mortem;
//   - a WireObserver (ipc/capture.hpp): a live tap seeing every transfer as
//     it happens (the protocol conformance monitor attaches here).
// Blocking sends/receives are bounded by a per-channel I/O timeout; all
// channel descriptors are O_NONBLOCK so write deadlines are enforceable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "ipc/fd.hpp"
#include "ipc/retry.hpp"

namespace nisc::ipc {

class FaultState;
class WireCapture;
class WireObserver;

/// A bidirectional byte-stream endpoint. Reading and writing may happen from
/// different threads (one reader, one writer).
class Channel {
 public:
  Channel() = default;
  Channel(Fd read_fd, Fd write_fd) : read_fd_(std::move(read_fd)), write_fd_(std::move(write_fd)) {}

  /// Constructs from a single full-duplex descriptor (socket).
  static Channel from_socket(Fd socket_fd);

  bool valid() const noexcept { return read_fd_.valid() && write_fd_.valid(); }

  const Fd& read_fd() const noexcept { return read_fd_; }
  const Fd& write_fd() const noexcept { return write_fd_; }

  /// Hard deadline (ms) for each blocking send/recv_exact; < 0 waits
  /// forever (the raw-channel default: one read/write syscall per
  /// transfer). A finite deadline switches the descriptors to non-blocking
  /// so every wait can be bounded by poll — the co-simulation sessions
  /// install one on every endpoint they create.
  void set_io_timeout(int timeout_ms);
  int io_timeout() const noexcept { return io_timeout_ms_; }

  void send(std::span<const std::uint8_t> data);
  void send_str(const std::string& s);
  void recv_exact(std::span<std::uint8_t> out);
  bool readable(int timeout_ms = 0);
  std::size_t recv_some(std::span<std::uint8_t> out);

  /// Installs a fault plan state (normally via FaultyChannel::install).
  void attach_faults(std::shared_ptr<FaultState> faults) noexcept { faults_ = std::move(faults); }
  const std::shared_ptr<FaultState>& faults() const noexcept { return faults_; }

  /// Installs a wire-capture ring recording every transfer on this channel.
  void attach_capture(std::shared_ptr<WireCapture> capture) noexcept {
    capture_ = std::move(capture);
  }
  const std::shared_ptr<WireCapture>& capture() const noexcept { return capture_; }

  /// Installs (or, with nullptr, detaches) a live observer seeing every
  /// transfer (post fault injection, i.e. the bytes that actually crossed
  /// the wire on this endpoint). Safe to call while the reader/writer
  /// threads are mid-traffic: the pointer is published atomically and
  /// in-flight calls finish against the observer they loaded — the
  /// supervisor re-attaches its conformance monitor on recovery while the
  /// peer may still be draining.
  void attach_observer(std::shared_ptr<WireObserver> observer) noexcept;
  std::shared_ptr<WireObserver> observer() const noexcept;

  /// Forwards an out-of-band endpoint event (e.g. "quiesce") to the
  /// observer, if any; defined out of line to keep WireObserver forward-
  /// declared here.
  void notify_observer(std::string_view tag);

  /// Closes both directions.
  void close() noexcept {
    read_fd_.reset();
    write_fd_.reset();
  }

 private:
  /// Acquire-loads the observer for one I/O call (never touch observer_
  /// directly on the hot paths: attach/detach may race with traffic).
  std::shared_ptr<WireObserver> load_observer() const noexcept;

  Fd read_fd_;
  Fd write_fd_;
  int io_timeout_ms_ = -1;
  std::shared_ptr<FaultState> faults_;
  std::shared_ptr<WireCapture> capture_;
  std::shared_ptr<WireObserver> observer_;  // atomic_load/atomic_store only
};

/// Two channel endpoints wired back-to-back.
struct ChannelPair {
  Channel a;
  Channel b;
};

/// Transport flavor for make_channel_pair.
enum class Transport { Pipe, SocketPair, Tcp };

/// Creates a connected pair of endpoints over the requested transport.
/// Pipe uses two pipe(2) calls (matching the paper's GDB-Kernel IPC);
/// SocketPair uses socketpair(2); Tcp opens a loopback listener on an
/// ephemeral port and connects to it (matching the Driver-Kernel socket
/// style without hard-coding 4444/4445, which tests could not share).
ChannelPair make_channel_pair(Transport transport);

/// Loopback TCP listener for explicit Driver-Kernel style setups.
class TcpListener {
 public:
  /// Binds 127.0.0.1:`port`; port 0 picks an ephemeral port.
  explicit TcpListener(std::uint16_t port);

  std::uint16_t port() const noexcept { return port_; }

  /// Waits up to `timeout_ms` (< 0: forever) for a peer; throws
  /// RuntimeError("accept: timed out...") on expiry.
  Channel accept(int timeout_ms = -1);

  /// Non-blocking accept: returns an invalid Channel when nobody is
  /// waiting.
  Channel try_accept();

 private:
  Fd listen_fd_;
  std::uint16_t port_ = 0;
};

/// Connects to a loopback TCP listener. The second overload retries refused
/// connections under `policy` (exponential backoff with seeded jitter) —
/// the Driver-Kernel guest may boot before the SystemC side is listening.
Channel tcp_connect(std::uint16_t port);
Channel tcp_connect(std::uint16_t port, const RetryPolicy& policy);

/// Human-readable transport name (for bench output).
const char* transport_name(Transport transport) noexcept;

}  // namespace nisc::ipc
