#include "ipc/message.hpp"

#include "util/error.hpp"
#include "util/hex.hpp"

namespace nisc::ipc {

using util::Result;
using util::RuntimeError;

const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::Read: return "READ";
    case MsgType::Write: return "WRITE";
    case MsgType::ReadReply: return "READ-REPLY";
    case MsgType::Interrupt: return "INTERRUPT";
  }
  return "?";
}

DriverMessage DriverMessage::write_u32(const std::string& port, std::uint32_t value) {
  DriverMessage msg;
  msg.type = MsgType::Write;
  MsgItem item;
  item.port = port;
  item.data.resize(4);
  util::write_le(item.data, 4, value);
  msg.items.push_back(std::move(item));
  return msg;
}

DriverMessage DriverMessage::read_request(const std::string& port) {
  DriverMessage msg;
  msg.type = MsgType::Read;
  msg.items.push_back(MsgItem{port, {}});
  return msg;
}

DriverMessage DriverMessage::interrupt(std::uint32_t irq) {
  DriverMessage msg;
  msg.type = MsgType::Interrupt;
  MsgItem item;
  item.port = "irq";
  item.data.resize(4);
  util::write_le(item.data, 4, irq);
  msg.items.push_back(std::move(item));
  return msg;
}

std::optional<std::uint32_t> DriverMessage::irq() const {
  if (type != MsgType::Interrupt || items.size() != 1 || items[0].data.size() != 4) {
    return std::nullopt;
  }
  return util::read_le(items[0].data, 4);
}

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

std::vector<std::uint8_t> encode_message(const DriverMessage& msg) {
  util::require(msg.items.size() <= 0xFFFF, "encode_message: too many items");
  std::vector<std::uint8_t> body;
  body.push_back(static_cast<std::uint8_t>(msg.type));
  put_u16(body, static_cast<std::uint16_t>(msg.items.size()));
  for (const MsgItem& item : msg.items) {
    util::require(item.port.size() <= 0xFFFF, "encode_message: port name too long");
    put_u16(body, static_cast<std::uint16_t>(item.port.size()));
    body.insert(body.end(), item.port.begin(), item.port.end());
    put_u32(body, static_cast<std::uint32_t>(item.data.size()));
    body.insert(body.end(), item.data.begin(), item.data.end());
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + body.size());
  put_u32(frame, static_cast<std::uint32_t>(body.size()));
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

Result<DriverMessage> decode_message_body(std::span<const std::uint8_t> body) {
  auto fail = [](const char* why) { return Result<DriverMessage>::failure(why); };
  std::size_t pos = 0;
  auto need = [&](std::size_t n) { return pos + n <= body.size(); };

  if (!need(3)) return fail("decode_message: truncated header");
  std::uint8_t raw_type = body[pos++];
  if (raw_type > static_cast<std::uint8_t>(MsgType::Interrupt)) {
    return fail("decode_message: unknown type");
  }
  DriverMessage msg;
  msg.type = static_cast<MsgType>(raw_type);
  std::uint16_t count = static_cast<std::uint16_t>(body[pos] | (body[pos + 1] << 8));
  pos += 2;
  msg.items.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    if (!need(2)) return fail("decode_message: truncated port length");
    std::uint16_t port_len = static_cast<std::uint16_t>(body[pos] | (body[pos + 1] << 8));
    pos += 2;
    if (!need(port_len)) return fail("decode_message: truncated port name");
    MsgItem item;
    item.port.assign(reinterpret_cast<const char*>(body.data() + pos), port_len);
    pos += port_len;
    if (!need(4)) return fail("decode_message: truncated data size");
    std::uint32_t data_size = util::read_le(body.subspan(pos), 4);
    pos += 4;
    if (data_size > kMaxMessageBody || !need(data_size)) {
      return fail("decode_message: truncated data");
    }
    item.data.assign(body.begin() + static_cast<std::ptrdiff_t>(pos),
                     body.begin() + static_cast<std::ptrdiff_t>(pos + data_size));
    pos += data_size;
    msg.items.push_back(std::move(item));
  }
  if (pos != body.size()) return fail("decode_message: trailing bytes");
  return msg;
}

void send_message(Channel& channel, const DriverMessage& msg) {
  channel.send(encode_message(msg));
}

DriverMessage recv_message(Channel& channel) {
  std::uint8_t size_bytes[4];
  channel.recv_exact(size_bytes);
  std::uint32_t size = util::read_le(size_bytes, 4);
  if (size > kMaxMessageBody) throw RuntimeError("recv_message: oversized frame");
  std::vector<std::uint8_t> body(size);
  if (size > 0) channel.recv_exact(body);
  auto msg = decode_message_body(body);
  if (!msg.ok()) throw RuntimeError(msg.error());
  return std::move(msg).value();
}

std::optional<DriverMessage> try_recv_message(Channel& channel) {
  if (!channel.readable(0)) return std::nullopt;
  return recv_message(channel);
}

}  // namespace nisc::ipc
