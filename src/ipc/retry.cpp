#include "ipc/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace nisc::ipc {

int Backoff::next_delay_ms() {
  ++attempt_;
  if (attempt_ >= policy_.max_attempts) return -1;
  double base = std::min(next_ms_, static_cast<double>(policy_.max_backoff_ms));
  next_ms_ = next_ms_ * policy_.multiplier;
  double jittered = base * (1.0 + policy_.jitter * rng_.next_double());
  jittered = std::min(jittered, static_cast<double>(policy_.max_backoff_ms));
  return std::max(0, static_cast<int>(jittered));
}

void backoff_sleep_ms(int ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace nisc::ipc
