#include "ipc/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nisc::ipc {

std::uint64_t default_retry_seed() noexcept {
  // Read once: a mid-run setenv must not split one process's backoff
  // schedules across two seeds (the fault matrix re-reads per test, but a
  // given process run stays internally consistent).
  static const std::uint64_t seed = []() -> std::uint64_t {
    constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
    const char* env = std::getenv("NISC_FAULT_SEED");
    if (env == nullptr || *env == '\0') return kGolden;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end == env) return kGolden;
    return kGolden ^ (parsed * 0xBF58476D1CE4E5B9ULL);
  }();
  return seed;
}

int Backoff::next_delay_ms() {
  ++attempt_;
  if (attempt_ >= policy_.max_attempts) {
    obs::instant("ipc.retry_exhausted", "ipc", "attempts", static_cast<std::uint64_t>(attempt_));
    return -1;
  }
  static obs::Counter& c_retries = obs::counter("ipc.retry.attempts");
  c_retries.add(1);
  double base = std::min(next_ms_, static_cast<double>(policy_.max_backoff_ms));
  next_ms_ = next_ms_ * policy_.multiplier;
  double jittered = base * (1.0 + policy_.jitter * rng_.next_double());
  jittered = std::min(jittered, static_cast<double>(policy_.max_backoff_ms));
  const int delay = std::max(0, static_cast<int>(jittered));
  obs::instant("ipc.retry_backoff", "ipc", "delay_ms", static_cast<std::uint64_t>(delay));
  return delay;
}

void backoff_sleep_ms(int ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace nisc::ipc
