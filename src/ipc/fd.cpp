#include "ipc/fd.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "util/deadline.hpp"
#include "util/error.hpp"

namespace nisc::ipc {

using util::Deadline;
using util::RuntimeError;

namespace {
/// Writing to a pipe/socket whose peer died must surface as EPIPE (-> a
/// RuntimeError the co-simulation can handle), not a process-killing
/// SIGPIPE. Installed once, before the first write.
void ignore_sigpipe_once() {
  static const bool installed = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)installed;
}

/// Polls for `events`, honoring the deadline across EINTR restarts.
/// Returns true when an event fired, false on deadline expiry.
bool poll_deadline(const Fd& fd, short events, const Deadline& deadline, const char* who) {
  for (;;) {
    struct pollfd pfd = {fd.get(), events, 0};
    int rc = ::poll(&pfd, 1, deadline.remaining_ms());
    if (rc < 0) {
      if (errno == EINTR) {
        if (deadline.expired()) return false;
        continue;  // re-poll with the *remaining* time, not the original
      }
      throw RuntimeError(std::string(who) + ": poll: " + std::strerror(errno));
    }
    if (rc == 0) return false;
    return true;
  }
}
}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void write_all(const Fd& fd, std::span<const std::uint8_t> data, int timeout_ms) {
  ignore_sigpipe_once();
  const Deadline deadline = Deadline::after_ms(timeout_ms);
  std::size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd.get(), data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Peer not draining: wait for writability, bounded by the deadline.
        if (!poll_deadline(fd, POLLOUT, deadline, "write_all")) {
          throw RuntimeError("write_all: timed out with " +
                             std::to_string(data.size() - written) + " byte(s) unsent");
        }
        continue;
      }
      throw RuntimeError(std::string("write_all: ") + std::strerror(errno));
    }
    if (n == 0) throw RuntimeError("write_all: peer closed");
    written += static_cast<std::size_t>(n);
  }
}

void read_exact(const Fd& fd, std::span<std::uint8_t> out, int timeout_ms) {
  const Deadline deadline = Deadline::after_ms(timeout_ms);
  std::size_t got = 0;
  while (got < out.size()) {
    ssize_t n = ::read(fd.get(), out.data() + got, out.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!poll_deadline(fd, POLLIN, deadline, "read_exact")) {
          throw RuntimeError("read_exact: timed out with " +
                             std::to_string(out.size() - got) + " byte(s) missing");
        }
        continue;
      }
      throw RuntimeError(std::string("read_exact: ") + std::strerror(errno));
    }
    if (n == 0) throw RuntimeError("read_exact: peer closed");
    got += static_cast<std::size_t>(n);
  }
}

bool poll_readable(const Fd& fd, int timeout_ms) {
  const Deadline deadline = Deadline::after_ms(timeout_ms);
  for (;;) {
    struct pollfd pfd = {fd.get(), POLLIN, 0};
    int rc = ::poll(&pfd, 1, deadline.remaining_ms());
    if (rc < 0) {
      if (errno == EINTR) {
        // Recompute the remaining time: repeated signals must not restart
        // the full timeout (they used to, making the wait unbounded).
        if (deadline.expired()) return false;
        continue;
      }
      throw RuntimeError(std::string("poll_readable: ") + std::strerror(errno));
    }
    if (rc == 0) return false;
    return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
  }
}

std::size_t read_some_nonblocking(const Fd& fd, std::span<std::uint8_t> out) {
  if (!poll_readable(fd, 0)) return 0;
  ssize_t n = ::read(fd.get(), out.data(), out.size());
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
    throw RuntimeError(std::string("read_some_nonblocking: ") + std::strerror(errno));
  }
  if (n == 0) throw RuntimeError("read_some_nonblocking: peer closed");
  return static_cast<std::size_t>(n);
}

void set_nonblocking(const Fd& fd, bool nonblocking) {
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0) throw RuntimeError(std::string("fcntl(F_GETFL): ") + std::strerror(errno));
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd.get(), F_SETFL, flags) < 0) {
    throw RuntimeError(std::string("fcntl(F_SETFL): ") + std::strerror(errno));
  }
}

}  // namespace nisc::ipc
