#include "rsp/packet.hpp"

#include "util/hex.hpp"

namespace nisc::rsp {

std::uint8_t packet_checksum(std::string_view payload) noexcept {
  unsigned sum = 0;
  for (char c : payload) sum += static_cast<std::uint8_t>(c);
  return static_cast<std::uint8_t>(sum);
}

std::string frame_packet(std::string_view payload) {
  std::string escaped;
  escaped.reserve(payload.size());
  for (char c : payload) {
    if (c == '$' || c == '#' || c == '}' || c == '*') {
      escaped.push_back('}');
      escaped.push_back(static_cast<char>(c ^ 0x20));
    } else {
      escaped.push_back(c);
    }
  }
  std::uint8_t sum = packet_checksum(escaped);
  std::string frame;
  frame.reserve(escaped.size() + 4);
  frame.push_back('$');
  frame += escaped;
  frame.push_back('#');
  frame.push_back(util::hex_digit(sum >> 4));
  frame.push_back(util::hex_digit(sum & 0xF));
  return frame;
}

void PacketReader::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<RspEvent> PacketReader::next() {
  while (!buffer_.empty()) {
    std::uint8_t first = buffer_.front();
    if (first == '+') {
      buffer_.pop_front();
      return RspEvent{RspEventKind::Ack, {}};
    }
    if (first == '-') {
      buffer_.pop_front();
      return RspEvent{RspEventKind::Nak, {}};
    }
    if (first == 0x03) {
      buffer_.pop_front();
      return RspEvent{RspEventKind::Interrupt, {}};
    }
    if (first != '$') {
      buffer_.pop_front();  // stray byte between frames
      continue;
    }
    // Find the '#' terminator followed by two checksum digits.
    std::size_t hash = 0;
    bool found = false;
    for (std::size_t i = 1; i < buffer_.size(); ++i) {
      if (buffer_[i] == '#') {
        hash = i;
        found = true;
        break;
      }
    }
    if (!found || hash + 2 >= buffer_.size()) return std::nullopt;  // incomplete

    std::string escaped(buffer_.begin() + 1, buffer_.begin() + static_cast<std::ptrdiff_t>(hash));
    int hi = util::hex_value(static_cast<char>(buffer_[hash + 1]));
    int lo = util::hex_value(static_cast<char>(buffer_[hash + 2]));
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(hash + 3));
    if (hi < 0 || lo < 0 ||
        static_cast<std::uint8_t>((hi << 4) | lo) != packet_checksum(escaped)) {
      return RspEvent{RspEventKind::Nak, {}};
    }
    // Unescape.
    std::string payload;
    payload.reserve(escaped.size());
    for (std::size_t i = 0; i < escaped.size(); ++i) {
      if (escaped[i] == '}' && i + 1 < escaped.size()) {
        payload.push_back(static_cast<char>(escaped[i + 1] ^ 0x20));
        ++i;
      } else {
        payload.push_back(escaped[i]);
      }
    }
    return RspEvent{RspEventKind::Packet, std::move(payload)};
  }
  return std::nullopt;
}

}  // namespace nisc::rsp
