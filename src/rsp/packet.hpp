// GDB Remote Serial Protocol framing.
//
// Frames look like `$payload#cc` where cc is a two-digit hex modulo-256 sum
// of the payload. Receivers acknowledge with '+' (ok) or '-' (resend). The
// single byte 0x03 is an out-of-band interrupt request. This module handles
// only the byte-level framing; command semantics live in stub.cpp/client.cpp.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace nisc::rsp {

/// Modulo-256 sum of payload bytes, as used in the RSP trailer.
std::uint8_t packet_checksum(std::string_view payload) noexcept;

/// Wraps `payload` into `$payload#cc`. Payload characters '$', '#', '}' and
/// '*' are escaped with '}' per the protocol.
std::string frame_packet(std::string_view payload);

/// Events a PacketReader can produce.
enum class RspEventKind : std::uint8_t { Packet, Ack, Nak, Interrupt };

struct RspEvent {
  RspEventKind kind;
  std::string payload;  // for Packet only (unescaped)
};

/// Incremental RSP parser: feed raw bytes, poll complete events.
/// Packets with bad checksums are dropped and surface as Nak events so the
/// caller can request retransmission.
class PacketReader {
 public:
  /// Appends raw bytes from the transport.
  void feed(std::span<const std::uint8_t> bytes);

  /// Pops the next complete event, if any.
  std::optional<RspEvent> next();

  /// Bytes currently buffered but not yet consumed.
  std::size_t pending_bytes() const noexcept { return buffer_.size(); }

 private:
  std::deque<std::uint8_t> buffer_;
};

}  // namespace nisc::rsp
