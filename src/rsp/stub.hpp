// Target-side GDB stub: serves the remote debugging interface for an ISS.
//
// This is the "any ISS that can communicate with gdb can join the
// co-simulation" half of the paper's standardized interface (after Benini
// et al. [14]): the SystemC side talks RSP, the stub translates to ISS
// operations. Supported packets:
//
//   ?                halt reason              g / G        all registers
//   p<n> / P<n>=<v>  single register          m / M        memory
//   Z0/z0            sw breakpoints           Z2/z2        write watchpoints
//   c / s            continue / step          k            kill (ends serve)
//   qSupported, qAttached, H..., D            handshaking odds and ends
//
// While the CPU runs (after 'c'), execution proceeds in quantum slices; an
// optional throttle callback meters instructions (the co-simulation layer
// uses it to bind ISS progress to SystemC time), and the 0x03 interrupt
// byte halts the target.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "ipc/channel.hpp"
#include "iss/cpu.hpp"
#include "rsp/packet.hpp"

namespace nisc::rsp {

struct StubOptions {
  /// Instructions per continue-slice between transport polls.
  std::uint64_t quantum = 4096;
  /// Optional throttle: given the desired instruction count, returns how
  /// many the CPU may execute now (may block). Used for time correlation.
  std::function<std::uint64_t(std::uint64_t)> acquire_quantum;
  /// Optional run-state notification: called with true when the target
  /// starts free-running ('c') and false when it halts. The co-simulation
  /// layer uses it to mark the CPU's time allowance idle while halted.
  std::function<void(bool running)> on_run_state;
};

/// Statistics exposed for benchmarks/tests.
struct StubStats {
  std::uint64_t packets_handled = 0;
  std::uint64_t stop_replies = 0;
  std::uint64_t continue_slices = 0;
};

class GdbStub {
 public:
  GdbStub(iss::Cpu& cpu, ipc::Channel channel, StubOptions options = {});

  /// Serves requests until 'k' (kill), 'D' (detach), transport EOF/error,
  /// or request_stop(). Run this on the dedicated target thread. Never
  /// blocks unboundedly: while halted it wakes every ~100 ms to re-check
  /// its exit conditions.
  void serve();

  /// Processes at most one pending event without blocking; returns false
  /// when nothing was pending. Useful for single-threaded tests.
  bool poll();

  /// Asks serve() (possibly on another thread) to return at its next tick.
  void request_stop() noexcept { stop_requested_.store(true, std::memory_order_relaxed); }

  const StubStats& stats() const noexcept { return stats_; }

 private:
  enum class State : std::uint8_t { Halted, Running };

  void pump_transport(bool blocking);
  void handle_event(const RspEvent& event);
  void handle_packet(const std::string& payload);
  /// Returns false when the throttle granted no instructions.
  bool run_slice();
  void send_packet(const std::string& payload);
  void send_stop_reply(iss::Halt halt);

  std::string cmd_read_registers();
  std::string cmd_write_registers(std::string_view args);
  std::string cmd_read_register(std::string_view args);
  std::string cmd_write_register(std::string_view args);
  std::string cmd_read_memory(std::string_view args);
  std::string cmd_write_memory(std::string_view args);
  std::string cmd_breakpoint(char op, std::string_view args);

  iss::Cpu& cpu_;
  ipc::Channel channel_;
  StubOptions options_;
  PacketReader reader_;
  State state_ = State::Halted;
  bool done_ = false;
  std::atomic<bool> stop_requested_{false};
  std::string last_frame_;  // for Nak retransmission
  StubStats stats_;
};

}  // namespace nisc::rsp
