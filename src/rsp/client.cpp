#include "rsp/client.hpp"

#include <cstdio>

#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/strings.hpp"

namespace nisc::rsp {

using util::RuntimeError;

GdbClient::GdbClient(ipc::Channel channel, ClientOptions options)
    : channel_(std::move(channel)), options_(options) {}

void GdbClient::send_frame(const std::string& payload) {
  last_frame_ = frame_packet(payload);
  channel_.send_str(last_frame_);
}

void GdbClient::pump(bool blocking, int timeout_ms) {
  std::uint8_t buf[512];
  if (blocking) {
    if (!channel_.readable(timeout_ms)) return;
  }
  std::size_t n = channel_.recv_some(buf);
  if (n > 0) reader_.feed(std::span<const std::uint8_t>(buf, n));
}

std::string GdbClient::await_reply() {
  const util::Deadline deadline = util::Deadline::after_ms(options_.reply_timeout_ms);
  for (;;) {
    while (auto event = reader_.next()) {
      switch (event->kind) {
        case RspEventKind::Packet:
          channel_.send_str("+");
          return event->payload;
        case RspEventKind::Ack:
          break;  // our request arrived intact
        case RspEventKind::Nak:
          channel_.send_str(last_frame_);
          break;
        case RspEventKind::Interrupt:
          break;  // not expected on the client side
      }
    }
    if (deadline.expired()) {
      throw RuntimeError("GdbClient: no reply to " + last_frame_ + " within " +
                         std::to_string(options_.reply_timeout_ms) + " ms");
    }
    pump(/*blocking=*/true, deadline.remaining_ms());
  }
}

std::string GdbClient::transact(const std::string& payload) {
  util::require(!running_, "GdbClient::transact while target is running");
  ++stats_.transactions;
  send_frame(payload);
  return await_reply();
}

std::vector<std::uint32_t> GdbClient::read_registers() {
  std::string reply = transact("g");
  if (reply.size() != 33 * 8) throw RuntimeError("read_registers: bad reply " + reply);
  std::vector<std::uint32_t> regs(33);
  for (int i = 0; i < 33; ++i) {
    auto value = util::hex_decode_u32_le(std::string_view(reply).substr(static_cast<std::size_t>(i) * 8, 8));
    if (!value.ok()) throw RuntimeError("read_registers: bad hex");
    regs[static_cast<std::size_t>(i)] = value.value();
  }
  return regs;
}

std::uint32_t GdbClient::read_register(int regnum) {
  char cmd[16];
  std::snprintf(cmd, sizeof(cmd), "p%x", regnum);
  std::string reply = transact(cmd);
  auto value = util::hex_decode_u32_le(reply);
  if (!value.ok()) throw RuntimeError("read_register: bad reply " + reply);
  return value.value();
}

void GdbClient::write_register(int regnum, std::uint32_t value) {
  char cmd[32];
  std::snprintf(cmd, sizeof(cmd), "P%x=%s", regnum, util::hex_encode_u32_le(value).c_str());
  if (transact(cmd) != "OK") throw RuntimeError("write_register failed");
}

std::vector<std::uint8_t> GdbClient::read_memory(std::uint32_t addr, std::size_t len) {
  char cmd[48];
  std::snprintf(cmd, sizeof(cmd), "m%x,%zx", addr, len);
  std::string reply = transact(cmd);
  auto bytes = util::hex_decode(reply);
  if (!bytes.ok() || bytes.value().size() != len) {
    throw RuntimeError("read_memory: bad reply " + reply);
  }
  return std::move(bytes).value();
}

void GdbClient::write_memory(std::uint32_t addr, std::span<const std::uint8_t> bytes) {
  char head[48];
  std::snprintf(head, sizeof(head), "M%x,%zx:", addr, bytes.size());
  std::string cmd = head + util::hex_encode(bytes);
  if (transact(cmd) != "OK") throw RuntimeError("write_memory failed");
}

std::uint32_t GdbClient::read_u32(std::uint32_t addr) {
  auto bytes = read_memory(addr, 4);
  return util::read_le(bytes, 4);
}

void GdbClient::write_u32(std::uint32_t addr, std::uint32_t value) {
  std::uint8_t bytes[4];
  util::write_le(bytes, 4, value);
  write_memory(addr, bytes);
}

void GdbClient::set_breakpoint(std::uint32_t addr) {
  char cmd[32];
  std::snprintf(cmd, sizeof(cmd), "Z0,%x,4", addr);
  if (transact(cmd) != "OK") throw RuntimeError("set_breakpoint failed");
}

void GdbClient::remove_breakpoint(std::uint32_t addr) {
  char cmd[32];
  std::snprintf(cmd, sizeof(cmd), "z0,%x,4", addr);
  if (transact(cmd) != "OK") throw RuntimeError("remove_breakpoint failed");
}

void GdbClient::set_watchpoint(std::uint32_t addr, std::uint32_t len) {
  char cmd[32];
  std::snprintf(cmd, sizeof(cmd), "Z2,%x,%x", addr, len);
  if (transact(cmd) != "OK") throw RuntimeError("set_watchpoint failed");
}

void GdbClient::remove_watchpoint(std::uint32_t addr, std::uint32_t len) {
  char cmd[32];
  std::snprintf(cmd, sizeof(cmd), "z2,%x,%x", addr, len);
  if (transact(cmd) != "OK") throw RuntimeError("remove_watchpoint failed");
}

void GdbClient::cont() {
  util::require(!running_, "GdbClient::cont while already running");
  ++stats_.continues;
  send_frame("c");
  running_ = true;
}

StopReply GdbClient::parse_stop(const std::string& payload) {
  StopReply stop;
  if (payload.size() >= 3 && (payload[0] == 'S' || payload[0] == 'T')) {
    int hi = util::hex_value(payload[1]);
    int lo = util::hex_value(payload[2]);
    if (hi >= 0 && lo >= 0) stop.signal = (hi << 4) | lo;
  }
  std::size_t pc_pair = payload.find("20:");
  if (payload.size() >= 3 && payload[0] == 'T' && pc_pair != std::string::npos) {
    auto value = util::hex_decode_u32_le(std::string_view(payload).substr(pc_pair + 3, 8));
    if (value.ok()) stop.pc = value.value();
  }
  std::size_t watch = payload.find("watch:");
  if (watch != std::string::npos) {
    std::size_t semi = payload.find(';', watch);
    std::string hex = payload.substr(watch + 6, semi == std::string::npos ? std::string::npos
                                                                          : semi - watch - 6);
    std::uint32_t addr = 0;
    for (char c : hex) {
      int v = util::hex_value(c);
      if (v < 0) break;
      addr = (addr << 4) | static_cast<std::uint32_t>(v);
    }
    stop.watch_addr = addr;
  }
  return stop;
}

std::optional<StopReply> GdbClient::poll_stop() {
  util::require(running_, "GdbClient::poll_stop while target halted");
  ++stats_.stop_polls;
  pump(/*blocking=*/false);
  while (auto event = reader_.next()) {
    if (event->kind == RspEventKind::Packet) {
      channel_.send_str("+");
      running_ = false;
      ++stats_.stops_received;
      return parse_stop(event->payload);
    }
    // Acks/Naks between frames are ignored while running.
  }
  return std::nullopt;
}

std::optional<StopReply> GdbClient::wait_stop(int timeout_ms) {
  util::require(running_, "GdbClient::wait_stop while target halted");
  // A single deadline bounds the whole wait: re-polling after stray acks or
  // partial frames must not re-arm the full timeout (it used to).
  const util::Deadline deadline = util::Deadline::after_ms(timeout_ms);
  for (;;) {
    ++stats_.stop_polls;
    while (auto event = reader_.next()) {
      if (event->kind == RspEventKind::Packet) {
        channel_.send_str("+");
        running_ = false;
        ++stats_.stops_received;
        return parse_stop(event->payload);
      }
    }
    if (deadline.expired()) return std::nullopt;
    if (channel_.readable(deadline.remaining_ms())) pump(/*blocking=*/false);
  }
}

StopReply GdbClient::step() {
  std::string reply = transact("s");
  return parse_stop(reply);
}

StopReply GdbClient::run_quantum(std::uint64_t max_instructions) {
  char cmd[32];
  std::snprintf(cmd, sizeof(cmd), "qnisc.run:%llx",
                static_cast<unsigned long long>(max_instructions));
  std::string reply = transact(cmd);
  if (reply.empty() || (reply[0] != 'T' && reply[0] != 'S')) {
    throw RuntimeError("run_quantum: bad reply " + reply);
  }
  return parse_stop(reply);
}

void GdbClient::interrupt() {
  util::require(running_, "GdbClient::interrupt while target halted");
  channel_.send_str(std::string(1, '\x03'));
}

void GdbClient::kill() {
  send_frame("k");
}

}  // namespace nisc::rsp
