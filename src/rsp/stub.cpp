#include "rsp/stub.hpp"

#include <charconv>

#include "util/hex.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace nisc::rsp {
namespace {

constexpr int kRegCount = 33;  // x0..x31 + pc
constexpr int kPcRegNum = 32;

std::optional<std::uint64_t> parse_hex(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

}  // namespace

GdbStub::GdbStub(iss::Cpu& cpu, ipc::Channel channel, StubOptions options)
    : cpu_(cpu), channel_(std::move(channel)), options_(std::move(options)) {}

void GdbStub::serve() {
  while (!done_) {
    if (stop_requested_.load(std::memory_order_relaxed)) break;
    if (state_ == State::Halted) {
      pump_transport(/*blocking=*/true);
    } else {
      bool progressed = false;
      try {
        progressed = run_slice();
      } catch (const util::RuntimeError&) {
        done_ = true;  // stop reply could not be delivered
        break;
      }
      if (!progressed && state_ == State::Running) {
        // Throttle granted nothing (e.g. budget closed at teardown): avoid a
        // hard spin while still reacting promptly to packets.
        try {
          channel_.readable(1);
        } catch (const util::RuntimeError&) {
          done_ = true;
        }
      }
      pump_transport(/*blocking=*/false);
    }
    while (!done_) {
      auto event = reader_.next();
      if (!event) break;
      try {
        handle_event(*event);
      } catch (const util::RuntimeError&) {
        done_ = true;  // transport died mid-reply (peer gone / fault cut it)
      }
    }
  }
}

bool GdbStub::poll() {
  if (done_) return false;
  if (state_ == State::Running) run_slice();
  pump_transport(/*blocking=*/false);
  bool handled = false;
  while (auto event = reader_.next()) {
    handle_event(*event);
    handled = true;
    if (done_) break;
  }
  return handled || state_ == State::Running;
}

void GdbStub::pump_transport(bool blocking) {
  std::uint8_t buf[512];
  try {
    if (blocking) {
      // Wait for the first byte in bounded ticks (not forever) so serve()
      // re-checks done_/stop_requested_ even when the peer goes silent.
      if (!channel_.readable(100)) return;
    }
    std::size_t n = channel_.recv_some(buf);
    if (n > 0) reader_.feed(std::span<const std::uint8_t>(buf, n));
  } catch (const util::RuntimeError&) {
    done_ = true;  // peer closed
  }
}

void GdbStub::handle_event(const RspEvent& event) {
  switch (event.kind) {
    case RspEventKind::Packet:
      // Acknowledge then execute.
      channel_.send_str("+");
      handle_packet(event.payload);
      break;
    case RspEventKind::Ack:
      break;  // our last reply arrived
    case RspEventKind::Nak:
      if (!last_frame_.empty()) channel_.send_str(last_frame_);
      break;
    case RspEventKind::Interrupt:
      if (state_ == State::Running) {
        state_ = State::Halted;
        if (options_.on_run_state) options_.on_run_state(false);
        send_packet("S02");  // SIGINT
        ++stats_.stop_replies;
      }
      break;
  }
}

void GdbStub::send_packet(const std::string& payload) {
  last_frame_ = frame_packet(payload);
  channel_.send_str(last_frame_);
}

void GdbStub::send_stop_reply(iss::Halt halt) {
  ++stats_.stop_replies;
  // T-packets carry the pc (register 0x20) so clients avoid a read-pc
  // round trip per stop — real gdb stubs expedite registers the same way.
  const std::string pc_pair = "20:" + util::hex_encode_u32_le(cpu_.pc()) + ";";
  switch (halt) {
    case iss::Halt::Watchpoint: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "T05watch:%x;", cpu_.watch_hit_addr());
      send_packet(buf + pc_pair);
      return;
    }
    case iss::Halt::IllegalInstruction:
      send_packet("T04" + pc_pair);  // SIGILL
      return;
    case iss::Halt::MemoryFault:
      send_packet("T0b" + pc_pair);  // SIGSEGV
      return;
    default:
      send_packet("T05" + pc_pair);  // SIGTRAP
      return;
  }
}

bool GdbStub::run_slice() {
  std::uint64_t budget = options_.quantum;
  if (options_.acquire_quantum) budget = options_.acquire_quantum(budget);
  if (budget == 0) return false;
  ++stats_.continue_slices;
  iss::Halt halt = cpu_.run(budget);
  if (halt == iss::Halt::Quantum) return true;  // keep running next slice
  state_ = State::Halted;
  if (options_.on_run_state) options_.on_run_state(false);
  send_stop_reply(halt);
  return true;
}

void GdbStub::handle_packet(const std::string& payload) {
  ++stats_.packets_handled;
  if (payload.empty()) {
    send_packet("");
    return;
  }
  const char cmd = payload[0];
  std::string_view args = std::string_view(payload).substr(1);
  switch (cmd) {
    case '?':
      send_packet("S05");
      return;
    case 'g':
      send_packet(cmd_read_registers());
      return;
    case 'G':
      send_packet(cmd_write_registers(args));
      return;
    case 'p':
      send_packet(cmd_read_register(args));
      return;
    case 'P':
      send_packet(cmd_write_register(args));
      return;
    case 'm':
      send_packet(cmd_read_memory(args));
      return;
    case 'M':
      send_packet(cmd_write_memory(args));
      return;
    case 'Z':
    case 'z':
      send_packet(cmd_breakpoint(cmd, args));
      return;
    case 'c': {
      if (!args.empty()) {
        if (auto addr = parse_hex(args)) cpu_.set_pc(static_cast<std::uint32_t>(*addr));
      }
      state_ = State::Running;
      if (options_.on_run_state) options_.on_run_state(true);
      return;  // reply (stop packet) is deferred until the CPU halts
    }
    case 's': {
      if (!args.empty()) {
        if (auto addr = parse_hex(args)) cpu_.set_pc(static_cast<std::uint32_t>(*addr));
      }
      iss::Halt halt = cpu_.step();
      send_stop_reply(halt == iss::Halt::None ? iss::Halt::Ebreak : halt);
      return;
    }
    case 'k':
    case 'D':
      done_ = true;
      if (cmd == 'D') send_packet("OK");
      return;
    case 'H':
      send_packet("OK");  // thread ops: single-threaded target
      return;
    case 'q':
      if (util::starts_with(args, "Supported")) {
        send_packet("PacketSize=4000");
      } else if (args == "Attached") {
        send_packet("1");
      } else if (util::starts_with(args, "nisc.run:")) {
        // Vendor packet: synchronously run up to <hex n> instructions and
        // reply with a stop packet (T00 = quantum exhausted, still running).
        // This is the lock-step primitive of wrapper-style co-simulation:
        // one blocking round trip per simulation cycle.
        auto n = parse_hex(args.substr(9));
        if (!n) {
          send_packet("E01");
          return;
        }
        iss::Halt halt = cpu_.run(*n);
        if (halt == iss::Halt::Quantum) {
          send_packet("T00" + std::string("20:") + util::hex_encode_u32_le(cpu_.pc()) + ";");
          ++stats_.stop_replies;
        } else {
          send_stop_reply(halt);
        }
      } else {
        send_packet("");
      }
      return;
    default:
      send_packet("");  // unsupported
      return;
  }
}

std::string GdbStub::cmd_read_registers() {
  std::string out;
  out.reserve(kRegCount * 8);
  for (int i = 0; i < 32; ++i) out += util::hex_encode_u32_le(cpu_.reg(static_cast<std::uint8_t>(i)));
  out += util::hex_encode_u32_le(cpu_.pc());
  return out;
}

std::string GdbStub::cmd_write_registers(std::string_view args) {
  if (args.size() != kRegCount * 8) return "E01";
  for (int i = 0; i < kRegCount; ++i) {
    auto value = util::hex_decode_u32_le(args.substr(static_cast<std::size_t>(i) * 8, 8));
    if (!value.ok()) return "E01";
    if (i == kPcRegNum) {
      cpu_.set_pc(value.value());
    } else {
      cpu_.set_reg(static_cast<std::uint8_t>(i), value.value());
    }
  }
  return "OK";
}

std::string GdbStub::cmd_read_register(std::string_view args) {
  auto n = parse_hex(args);
  if (!n || *n >= kRegCount) return "E01";
  if (*n == kPcRegNum) return util::hex_encode_u32_le(cpu_.pc());
  return util::hex_encode_u32_le(cpu_.reg(static_cast<std::uint8_t>(*n)));
}

std::string GdbStub::cmd_write_register(std::string_view args) {
  std::size_t eq = args.find('=');
  if (eq == std::string_view::npos) return "E01";
  auto n = parse_hex(args.substr(0, eq));
  auto value = util::hex_decode_u32_le(args.substr(eq + 1));
  if (!n || *n >= kRegCount || !value.ok()) return "E01";
  if (*n == kPcRegNum) {
    cpu_.set_pc(value.value());
  } else {
    cpu_.set_reg(static_cast<std::uint8_t>(*n), value.value());
  }
  return "OK";
}

std::string GdbStub::cmd_read_memory(std::string_view args) {
  std::size_t comma = args.find(',');
  if (comma == std::string_view::npos) return "E01";
  auto addr = parse_hex(args.substr(0, comma));
  auto len = parse_hex(args.substr(comma + 1));
  if (!addr || !len) return "E01";
  try {
    auto bytes = cpu_.mem().read_block(static_cast<std::uint32_t>(*addr), *len);
    return util::hex_encode(bytes);
  } catch (const util::RuntimeError&) {
    return "E0e";
  }
}

std::string GdbStub::cmd_write_memory(std::string_view args) {
  std::size_t comma = args.find(',');
  std::size_t colon = args.find(':');
  if (comma == std::string_view::npos || colon == std::string_view::npos || colon < comma) {
    return "E01";
  }
  auto addr = parse_hex(args.substr(0, comma));
  auto len = parse_hex(args.substr(comma + 1, colon - comma - 1));
  auto bytes = util::hex_decode(args.substr(colon + 1));
  if (!addr || !len || !bytes.ok() || bytes.value().size() != *len) return "E01";
  try {
    cpu_.mem().write_block(static_cast<std::uint32_t>(*addr), bytes.value());
    return "OK";
  } catch (const util::RuntimeError&) {
    return "E0e";
  }
}

std::string GdbStub::cmd_breakpoint(char op, std::string_view args) {
  auto parts = util::split(args, ',');
  if (parts.size() < 2) return "E01";
  const std::string_view type = parts[0];
  auto addr = parse_hex(parts[1]);
  if (!addr) return "E01";
  if (type == "0" || type == "1") {  // sw/hw breakpoint: same mechanism here
    if (op == 'Z') {
      cpu_.add_breakpoint(static_cast<std::uint32_t>(*addr));
    } else {
      cpu_.remove_breakpoint(static_cast<std::uint32_t>(*addr));
    }
    return "OK";
  }
  if (type == "2") {  // write watchpoint
    std::uint64_t len = 4;
    if (parts.size() >= 3) {
      if (auto parsed = parse_hex(parts[2])) len = *parsed;
    }
    if (op == 'Z') {
      cpu_.add_watchpoint(static_cast<std::uint32_t>(*addr), static_cast<std::uint32_t>(len));
    } else {
      cpu_.remove_watchpoint(static_cast<std::uint32_t>(*addr));
    }
    return "OK";
  }
  return "";  // unsupported watchpoint flavor
}

}  // namespace nisc::rsp
