// Host-side GDB RSP client.
//
// The SystemC-side wrappers drive the ISS through this class, exactly as
// the paper's schemes drive gdb: set breakpoints on guest variables, read
// and write guest memory/registers, continue, and poll (non-blockingly, at
// the start of each simulation cycle) whether the target stopped.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ipc/channel.hpp"
#include "rsp/packet.hpp"

namespace nisc::rsp {

/// A target stop notification (GDB "T"/"S" stop-reply).
struct StopReply {
  int signal = 0;                          ///< e.g. 5 = SIGTRAP
  std::optional<std::uint32_t> watch_addr; ///< set for watchpoint stops
  std::optional<std::uint32_t> pc;         ///< expedited pc (T-packets)
};

/// Client statistics (for the Table 1 / ablation benchmarks).
struct ClientStats {
  std::uint64_t transactions = 0;   ///< synchronous request/replies
  std::uint64_t continues = 0;
  std::uint64_t stop_polls = 0;     ///< non-blocking stop checks
  std::uint64_t stops_received = 0;
};

struct ClientOptions {
  /// Hard deadline for each synchronous reply (transact/step/run_quantum);
  /// < 0 waits forever. On expiry the client throws RuntimeError naming the
  /// unanswered request — a hung stub can no longer hang the SystemC side.
  int reply_timeout_ms = 10000;
};

class GdbClient {
 public:
  explicit GdbClient(ipc::Channel channel, ClientOptions options = {});

  // -- raw protocol ---------------------------------------------------------

  /// Sends a command and waits for its reply (handles acks/retransmits).
  /// Must not be called while the target is running.
  std::string transact(const std::string& payload);

  // -- typed helpers ----------------------------------------------------------

  std::vector<std::uint32_t> read_registers();  ///< x0..x31 then pc
  std::uint32_t read_register(int regnum);
  void write_register(int regnum, std::uint32_t value);
  std::uint32_t read_pc() { return read_register(32); }
  void write_pc(std::uint32_t pc) { write_register(32, pc); }

  std::vector<std::uint8_t> read_memory(std::uint32_t addr, std::size_t len);
  void write_memory(std::uint32_t addr, std::span<const std::uint8_t> bytes);
  std::uint32_t read_u32(std::uint32_t addr);
  void write_u32(std::uint32_t addr, std::uint32_t value);

  void set_breakpoint(std::uint32_t addr);
  void remove_breakpoint(std::uint32_t addr);
  void set_watchpoint(std::uint32_t addr, std::uint32_t len);
  void remove_watchpoint(std::uint32_t addr, std::uint32_t len);

  // -- execution control --------------------------------------------------------

  /// Sends 'c'; the target runs until it stops. Use poll_stop()/wait_stop().
  void cont();

  /// True between cont() and the matching stop reply.
  bool running() const noexcept { return running_; }

  /// Non-blocking: has a stop reply arrived? (The paper's Fig. 3 check "GDB
  /// stopped at breakpoint?" implemented over the IPC channel.)
  std::optional<StopReply> poll_stop();

  /// Blocks until the target stops. `timeout_ms` < 0 waits forever.
  /// Returns nullopt on timeout.
  std::optional<StopReply> wait_stop(int timeout_ms = -1);

  /// Single-steps and returns the stop reply.
  StopReply step();

  /// Synchronously runs up to `max_instructions` on the target (vendor
  /// packet qnisc.run). signal == 0 in the reply means the quantum was
  /// exhausted without a halt. One blocking round trip: the lock-step
  /// synchronization primitive of wrapper-style co-simulation.
  StopReply run_quantum(std::uint64_t max_instructions);

  /// Sends the 0x03 interrupt byte to halt a running target.
  void interrupt();

  /// Asks the stub to exit ('k'); no reply expected.
  void kill();

  const ClientStats& stats() const noexcept { return stats_; }

  /// The underlying transport (e.g. to reach an attached WireCapture).
  ipc::Channel& channel() noexcept { return channel_; }
  const ipc::Channel& channel() const noexcept { return channel_; }

 private:
  void send_frame(const std::string& payload);
  void pump(bool blocking, int timeout_ms = -1);
  std::string await_reply();
  static StopReply parse_stop(const std::string& payload);

  ipc::Channel channel_;
  ClientOptions options_;
  PacketReader reader_;
  bool running_ = false;
  std::string last_frame_;
  ClientStats stats_;
};

}  // namespace nisc::rsp
