// cosim_stat: renders the observability JSON artifacts as tables and gates
// CI on bench regressions.
//
//   cosim_stat STATS.json                 metrics-registry snapshot -> table
//   cosim_stat BENCH_x.json               bench results -> table
//   cosim_stat --check-bench CUR.json --baseline BASE.json
//              [--max-regress-pct N]      exit 1 when any shared result's
//                                         median regressed more than N%
//                                         (default 15)
//
// Both file shapes are the schema-1 documents produced by --stats-out and
// the bench_json harness; the file kind is sniffed from its fields.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/json.hpp"

using nisc::util::JsonValue;

namespace {

int fail_usage() {
  std::fprintf(stderr,
               "usage: cosim_stat FILE.json\n"
               "       cosim_stat --check-bench CURRENT.json --baseline BASELINE.json"
               " [--max-regress-pct N]\n");
  return 2;
}

void print_stats_table(const JsonValue& doc) {
  std::printf("%-36s %16s\n", "counter", "value");
  for (const auto& [name, value] : doc.at("counters").as_object()) {
    std::printf("%-36s %16llu\n", name.c_str(),
                static_cast<unsigned long long>(value.as_uint()));
  }
  for (const auto& [name, value] : doc.at("gauges").as_object()) {
    std::printf("%-36s %16.6g  (gauge)\n", name.c_str(), value.as_double());
  }
  const auto& histograms = doc.at("histograms").as_object();
  if (!histograms.empty()) {
    std::printf("\n%-36s %10s %12s %10s %10s\n", "histogram", "count", "sum", "p50", "p90");
    for (const auto& [name, h] : histograms) {
      std::printf("%-36s %10llu %12llu %10.4g %10.4g\n", name.c_str(),
                  static_cast<unsigned long long>(h.at("count").as_uint()),
                  static_cast<unsigned long long>(h.at("sum").as_uint()),
                  h.at("p50").as_double(), h.at("p90").as_double());
    }
  }
}

void print_bench_table(const JsonValue& doc) {
  std::printf("bench %s%s\n\n", doc.at("bench").as_string().c_str(),
              doc.at("quick").as_bool() ? " (quick)" : "");
  std::printf("%-44s %6s %14s %14s %8s\n", "result", "runs", "median", "p90", "unit");
  for (const JsonValue& r : doc.at("results").as_array()) {
    std::printf("%-44s %6zu %14.6g %14.6g %8s\n", r.at("name").as_string().c_str(),
                r.at("runs").as_array().size(), r.at("median").as_double(),
                r.at("p90").as_double(), r.at("unit").as_string().c_str());
  }
  const JsonValue* metrics = doc.find("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    std::printf("\nembedded metrics snapshot:\n");
    print_stats_table(*metrics);
  }
}

const JsonValue* find_result(const JsonValue& doc, const std::string& name) {
  for (const JsonValue& r : doc.at("results").as_array()) {
    if (r.at("name").as_string() == name) return &r;
  }
  return nullptr;
}

int check_bench(const std::string& current_path, const std::string& baseline_path,
                double max_regress_pct) {
  const JsonValue current = nisc::util::parse_json_file(current_path);
  const JsonValue baseline = nisc::util::parse_json_file(baseline_path);
  std::printf("%-44s %14s %14s %9s\n", "result", "baseline", "current", "delta");
  int regressions = 0;
  int compared = 0;
  for (const JsonValue& base : baseline.at("results").as_array()) {
    const std::string& name = base.at("name").as_string();
    const JsonValue* cur = find_result(current, name);
    if (cur == nullptr) {
      std::printf("%-44s %14s %14s %9s\n", name.c_str(), "-", "missing", "-");
      continue;
    }
    const double base_median = base.at("median").as_double();
    const double cur_median = cur->at("median").as_double();
    if (base_median <= 0.0) continue;
    ++compared;
    const double delta_pct = (cur_median - base_median) / base_median * 100.0;
    // Seconds-like units: larger is slower. Non-time units (%, loc, ...)
    // are informational only.
    const bool time_like = base.at("unit").as_string() == "s";
    const bool regressed = time_like && delta_pct > max_regress_pct;
    if (regressed) ++regressions;
    std::printf("%-44s %14.6g %14.6g %+8.1f%%%s\n", name.c_str(), base_median, cur_median,
                delta_pct, regressed ? "  REGRESSED" : "");
  }
  if (compared == 0) {
    std::fprintf(stderr, "cosim_stat: no comparable results between %s and %s\n",
                 current_path.c_str(), baseline_path.c_str());
    return 2;
  }
  if (regressions > 0) {
    std::fprintf(stderr, "cosim_stat: %d result(s) regressed more than %.1f%%\n", regressions,
                 max_regress_pct);
    return 1;
  }
  std::printf("\nall %d comparable result(s) within %.1f%% of baseline\n", compared,
              max_regress_pct);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string check_current;
  std::string baseline;
  double max_regress_pct = 15.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check-bench") == 0 && i + 1 < argc) {
      check_current = argv[++i];
    } else if (std::strcmp(arg, "--baseline") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    } else if (std::strcmp(arg, "--max-regress-pct") == 0 && i + 1 < argc) {
      max_regress_pct = std::atof(argv[++i]);
    } else if (arg[0] == '-') {
      return fail_usage();
    } else {
      files.push_back(arg);
    }
  }

  try {
    if (!check_current.empty()) {
      if (baseline.empty()) return fail_usage();
      return check_bench(check_current, baseline, max_regress_pct);
    }
    if (files.empty()) return fail_usage();
    for (const std::string& file : files) {
      const JsonValue doc = nisc::util::parse_json_file(file);
      if (files.size() > 1) std::printf("== %s ==\n", file.c_str());
      if (doc.find("results") != nullptr) {
        print_bench_table(doc);
      } else if (doc.find("counters") != nullptr) {
        print_stats_table(doc);
      } else {
        std::fprintf(stderr, "cosim_stat: %s: neither a bench nor a stats document\n",
                     file.c_str());
        return 2;
      }
      if (files.size() > 1) std::printf("\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cosim_stat: %s\n", e.what());
    return 2;
  }
  return 0;
}
