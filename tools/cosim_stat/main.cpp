// cosim_stat: renders the observability JSON artifacts as tables and gates
// CI on bench regressions.
//
//   cosim_stat STATS.json                 metrics-registry snapshot -> table
//   cosim_stat BENCH_x.json               bench results -> table
//   cosim_stat diff A.json B.json         delta table between two stats or
//                                         two bench documents (eyeballing
//                                         regressions before the gate)
//   cosim_stat --check-bench CUR.json --baseline BASE.json
//              [--max-regress-pct N]      exit 1 when any shared result's
//                                         median regressed more than N%
//                                         (default 15)
//
// Both file shapes are the schema-1 documents produced by --stats-out and
// the bench_json harness; the file kind is sniffed from its fields.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/json.hpp"

using nisc::util::JsonValue;

namespace {

int fail_usage() {
  std::fprintf(stderr,
               "usage: cosim_stat FILE.json\n"
               "       cosim_stat diff A.json B.json\n"
               "       cosim_stat --check-bench CURRENT.json --baseline BASELINE.json"
               " [--max-regress-pct N]\n");
  return 2;
}

void print_stats_table(const JsonValue& doc) {
  std::printf("%-36s %16s\n", "counter", "value");
  for (const auto& [name, value] : doc.at("counters").as_object()) {
    std::printf("%-36s %16llu\n", name.c_str(),
                static_cast<unsigned long long>(value.as_uint()));
  }
  for (const auto& [name, value] : doc.at("gauges").as_object()) {
    std::printf("%-36s %16.6g  (gauge)\n", name.c_str(), value.as_double());
  }
  const auto& histograms = doc.at("histograms").as_object();
  if (!histograms.empty()) {
    std::printf("\n%-36s %10s %12s %10s %10s\n", "histogram", "count", "sum", "p50", "p90");
    for (const auto& [name, h] : histograms) {
      std::printf("%-36s %10llu %12llu %10.4g %10.4g\n", name.c_str(),
                  static_cast<unsigned long long>(h.at("count").as_uint()),
                  static_cast<unsigned long long>(h.at("sum").as_uint()),
                  h.at("p50").as_double(), h.at("p90").as_double());
    }
  }
}

void print_bench_table(const JsonValue& doc) {
  std::printf("bench %s%s\n\n", doc.at("bench").as_string().c_str(),
              doc.at("quick").as_bool() ? " (quick)" : "");
  std::printf("%-44s %6s %14s %14s %8s\n", "result", "runs", "median", "p90", "unit");
  for (const JsonValue& r : doc.at("results").as_array()) {
    std::printf("%-44s %6zu %14.6g %14.6g %8s\n", r.at("name").as_string().c_str(),
                r.at("runs").as_array().size(), r.at("median").as_double(),
                r.at("p90").as_double(), r.at("unit").as_string().c_str());
  }
  const JsonValue* metrics = doc.find("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    std::printf("\nembedded metrics snapshot:\n");
    print_stats_table(*metrics);
  }
}

const JsonValue* find_result(const JsonValue& doc, const std::string& name) {
  for (const JsonValue& r : doc.at("results").as_array()) {
    if (r.at("name").as_string() == name) return &r;
  }
  return nullptr;
}

int check_bench(const std::string& current_path, const std::string& baseline_path,
                double max_regress_pct) {
  const JsonValue current = nisc::util::parse_json_file(current_path);
  const JsonValue baseline = nisc::util::parse_json_file(baseline_path);
  std::printf("%-44s %14s %14s %9s\n", "result", "baseline", "current", "delta");
  int regressions = 0;
  int compared = 0;
  for (const JsonValue& base : baseline.at("results").as_array()) {
    const std::string& name = base.at("name").as_string();
    const JsonValue* cur = find_result(current, name);
    if (cur == nullptr) {
      std::printf("%-44s %14s %14s %9s\n", name.c_str(), "-", "missing", "-");
      continue;
    }
    const double base_median = base.at("median").as_double();
    const double cur_median = cur->at("median").as_double();
    if (base_median <= 0.0) continue;
    ++compared;
    const double delta_pct = (cur_median - base_median) / base_median * 100.0;
    // Seconds-like units: larger is slower. Non-time units (%, loc, ...)
    // are informational only.
    const bool time_like = base.at("unit").as_string() == "s";
    const bool regressed = time_like && delta_pct > max_regress_pct;
    if (regressed) ++regressions;
    std::printf("%-44s %14.6g %14.6g %+8.1f%%%s\n", name.c_str(), base_median, cur_median,
                delta_pct, regressed ? "  REGRESSED" : "");
  }
  if (compared == 0) {
    std::fprintf(stderr, "cosim_stat: no comparable results between %s and %s\n",
                 current_path.c_str(), baseline_path.c_str());
    return 2;
  }
  if (regressions > 0) {
    std::fprintf(stderr, "cosim_stat: %d result(s) regressed more than %.1f%%\n", regressions,
                 max_regress_pct);
    return 1;
  }
  std::printf("\nall %d comparable result(s) within %.1f%% of baseline\n", compared,
              max_regress_pct);
  return 0;
}

// -- diff -------------------------------------------------------------------

/// "A -> B (+delta)" row over the union of names in two scalar maps.
void diff_scalar_section(const JsonValue& a, const JsonValue& b, const char* section,
                         const char* suffix) {
  const JsonValue* section_a = a.find(section);
  const JsonValue* section_b = b.find(section);
  std::set<std::string> names;
  if (section_a != nullptr) {
    for (const auto& [name, value] : section_a->as_object()) names.insert(name);
  }
  if (section_b != nullptr) {
    for (const auto& [name, value] : section_b->as_object()) names.insert(name);
  }
  for (const std::string& name : names) {
    const JsonValue* va = section_a != nullptr ? section_a->find(name) : nullptr;
    const JsonValue* vb = section_b != nullptr ? section_b->find(name) : nullptr;
    if (va == nullptr) {
      std::printf("%-36s %16s %16.6g %12s%s\n", name.c_str(), "-", vb->as_double(), "added",
                  suffix);
    } else if (vb == nullptr) {
      std::printf("%-36s %16.6g %16s %12s%s\n", name.c_str(), va->as_double(), "-", "removed",
                  suffix);
    } else {
      const double da = va->as_double();
      const double db = vb->as_double();
      std::printf("%-36s %16.6g %16.6g %+12.6g%s\n", name.c_str(), da, db, db - da, suffix);
    }
  }
}

int diff_stats(const JsonValue& a, const JsonValue& b) {
  std::printf("%-36s %16s %16s %12s\n", "metric", "A", "B", "delta");
  diff_scalar_section(a, b, "counters", "");
  diff_scalar_section(a, b, "gauges", "  (gauge)");
  const JsonValue* hist_a = a.find("histograms");
  const JsonValue* hist_b = b.find("histograms");
  std::set<std::string> names;
  if (hist_a != nullptr) {
    for (const auto& [name, value] : hist_a->as_object()) names.insert(name);
  }
  if (hist_b != nullptr) {
    for (const auto& [name, value] : hist_b->as_object()) names.insert(name);
  }
  if (!names.empty()) {
    std::printf("\n%-36s %16s %16s %12s\n", "histogram", "count A", "count B", "p50 delta");
    for (const std::string& name : names) {
      const JsonValue* ha = hist_a != nullptr ? hist_a->find(name) : nullptr;
      const JsonValue* hb = hist_b != nullptr ? hist_b->find(name) : nullptr;
      if (ha == nullptr || hb == nullptr) {
        std::printf("%-36s %16s %16s %12s\n", name.c_str(),
                    ha != nullptr ? "present" : "-", hb != nullptr ? "present" : "-",
                    ha == nullptr ? "added" : "removed");
        continue;
      }
      std::printf("%-36s %16llu %16llu %+12.6g\n", name.c_str(),
                  static_cast<unsigned long long>(ha->at("count").as_uint()),
                  static_cast<unsigned long long>(hb->at("count").as_uint()),
                  hb->at("p50").as_double() - ha->at("p50").as_double());
    }
  }
  return 0;
}

int diff_bench(const JsonValue& a, const JsonValue& b) {
  std::printf("bench %s vs %s\n\n", a.at("bench").as_string().c_str(),
              b.at("bench").as_string().c_str());
  std::printf("%-44s %14s %14s %9s %8s\n", "result", "A median", "B median", "delta", "unit");
  std::map<std::string, const JsonValue*> results_b;
  for (const JsonValue& r : b.at("results").as_array()) {
    results_b[r.at("name").as_string()] = &r;
  }
  for (const JsonValue& ra : a.at("results").as_array()) {
    const std::string& name = ra.at("name").as_string();
    const auto it = results_b.find(name);
    if (it == results_b.end()) {
      std::printf("%-44s %14.6g %14s %9s\n", name.c_str(), ra.at("median").as_double(), "-",
                  "removed");
      continue;
    }
    const double ma = ra.at("median").as_double();
    const double mb = it->second->at("median").as_double();
    if (ma > 0.0) {
      std::printf("%-44s %14.6g %14.6g %+8.1f%% %8s\n", name.c_str(), ma, mb,
                  (mb - ma) / ma * 100.0, ra.at("unit").as_string().c_str());
    } else {
      std::printf("%-44s %14.6g %14.6g %9s %8s\n", name.c_str(), ma, mb, "-",
                  ra.at("unit").as_string().c_str());
    }
    results_b.erase(it);
  }
  for (const auto& [name, r] : results_b) {
    std::printf("%-44s %14s %14.6g %9s\n", name.c_str(), "-", r->at("median").as_double(),
                "added");
  }
  return 0;
}

int diff_files(const std::string& path_a, const std::string& path_b) {
  const JsonValue a = nisc::util::parse_json_file(path_a);
  const JsonValue b = nisc::util::parse_json_file(path_b);
  const bool bench_a = a.find("results") != nullptr;
  const bool bench_b = b.find("results") != nullptr;
  if (bench_a != bench_b) {
    std::fprintf(stderr, "cosim_stat: %s and %s are different document kinds\n", path_a.c_str(),
                 path_b.c_str());
    return 2;
  }
  return bench_a ? diff_bench(a, b) : diff_stats(a, b);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::strcmp(argv[1], "diff") == 0) {
    try {
      return diff_files(argv[2], argv[3]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cosim_stat: %s\n", e.what());
      return 2;
    }
  }
  if (argc > 1 && std::strcmp(argv[1], "diff") == 0) return fail_usage();
  std::vector<std::string> files;
  std::string check_current;
  std::string baseline;
  double max_regress_pct = 15.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check-bench") == 0 && i + 1 < argc) {
      check_current = argv[++i];
    } else if (std::strcmp(arg, "--baseline") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    } else if (std::strcmp(arg, "--max-regress-pct") == 0 && i + 1 < argc) {
      max_regress_pct = std::atof(argv[++i]);
    } else if (arg[0] == '-') {
      return fail_usage();
    } else {
      files.push_back(arg);
    }
  }

  try {
    if (!check_current.empty()) {
      if (baseline.empty()) return fail_usage();
      return check_bench(check_current, baseline, max_regress_pct);
    }
    if (files.empty()) return fail_usage();
    for (const std::string& file : files) {
      const JsonValue doc = nisc::util::parse_json_file(file);
      if (files.size() > 1) std::printf("== %s ==\n", file.c_str());
      if (doc.find("results") != nullptr) {
        print_bench_table(doc);
      } else if (doc.find("counters") != nullptr) {
        print_stats_table(doc);
      } else {
        std::fprintf(stderr, "cosim_stat: %s: neither a bench nor a stats document\n",
                     file.c_str());
        return 2;
      }
      if (files.size() > 1) std::printf("\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cosim_stat: %s\n", e.what());
    return 2;
  }
  return 0;
}
