// cosim_lint: standalone static analyzer for guest assembly programs, their
// pragma port bindings, and Driver-Kernel wire frames — the paper's §3.2
// filter tool grown into a checker (see src/analysis/lint.hpp for the rule
// catalog, DESIGN.md §8 for the subsystem overview).
//
// Usage:
//   cosim_lint [options] [file.s ...]
//     --json [FILE]        emit a JSON report instead of text; with FILE,
//                          write it there (text still goes to stdout)
//     --suppress RULE      drop diagnostics of RULE (repeatable)
//     --ports p1,p2,...    declared iss port list; pragmas must stay inside it
//     --base ADDR          guest load address (default 0)
//     --mem-size N         guest memory map size for NL303/NL305 (default 1 MiB)
//     --no-flow            skip the flow-sensitive NL3xx rules
//     --no-interproc       skip the interprocedural pass (call-graph function
//                          summaries + NL311-NL317); also drops the summary
//                          dump from --json output
//     --context-k N        call-string depth for context-sensitive summaries
//                          and the clone pass (default 1; 0 joins every
//                          caller, the context-insensitive view)
//     --stats              report precision counters (functions, clones,
//                          havoc'd summaries, narrowing iterations); with
//                          --json they land in a "stats" member
//     --max-warnings N     tolerate up to N warnings before exiting 1 (default 0)
//     --frames FILE        validate FILE as concatenated driver-kernel frames
//     --protocol           model-check the wire protocol automata (DESIGN.md
//                          §11): exhaustive exploration, NL41x counterexamples
//     --model NAME         restrict --protocol/--conform to one model
//                          (driver-kernel | gdb-kernel | gdb-wrapper |
//                           worker | driver-irq)
//     --faults             compose with the adversarial channel environment
//                          (lossy + duplicating + corrupting + disconnecting;
//                          the worker model rides a reliable socketpair, so
//                          its adversary is the crash environment instead)
//     --env LIST           pick adversarial behaviors individually, e.g.
//                          --env lossy,corrupting or --env crash (implies
//                          --protocol faults); "crash" is kill-at-any-state
//                          + respawn + Resume replay from the last Ckpt
//     --no-recovery        drop the resilience transitions from the automata
//     --no-push            driver-kernel: kernel does not push outputs
//     --no-interrupts      driver-kernel: kernel raises no interrupts
//     --no-sideband        worker: drop the seq-0 ClockSync/PullObs ops
//     --no-reply-log       worker: supervisor re-applies replayed effects
//                          instead of re-acking from the reply log (the
//                          NL413 duplicate-effect negative control)
//     --eager-prune        worker: reply log pruned before the ack is known
//                          to have landed (the NL414 lost-ack control)
//     --channel-cap N      in-flight messages per channel direction (default 2)
//     --conform FILE       replay a wire-capture post-mortem through the
//                          protocol conformance monitor (NL40x rules)
//     --emit-test DIR      with --protocol: compile every model-checker
//                          counterexample into a gtest source under DIR
//                          (one emitted_<model>_test.cpp per model)
//     --builtin            lint the built-in router guest programs
//     --rtos-prelude       prepend the RTOS guest-ABI prelude (SYS_* equates)
//                          to each linted source, as the Driver-Kernel
//                          session does before assembling
//     -                    read a guest program from stdin
//
// Exit status: 0 clean (no errors, warnings within --max-warnings),
// 1 findings, 2 usage or IO error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/emit_test.hpp"
#include "analysis/explore.hpp"
#include "analysis/frame.hpp"
#include "analysis/lint.hpp"
#include "analysis/protocol.hpp"
#include "router/guest_programs.hpp"
#include "rtos/rtos.hpp"
#include "util/strings.hpp"

using namespace nisc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json[=FILE]] [--suppress RULE]... [--ports p1,p2] [--base ADDR]\n"
               "       %*s [--mem-size N] [--no-flow] [--no-interproc] [--context-k N]\n"
               "       %*s [--stats] [--max-warnings N]\n"
               "       %*s [--rtos-prelude] [--frames FILE] [--protocol] [--model NAME]\n"
               "       %*s [--faults] [--env LIST] [--no-recovery] [--no-push]\n"
               "       %*s [--no-interrupts] [--no-sideband] [--no-reply-log] [--eager-prune]\n"
               "       %*s [--channel-cap N] [--conform FILE] [--emit-test DIR] [--builtin]\n"
               "       %*s [file.s ... | -]\n",
               argv0, static_cast<int>(std::string(argv0).size()), "",
               static_cast<int>(std::string(argv0).size()), "",
               static_cast<int>(std::string(argv0).size()), "",
               static_cast<int>(std::string(argv0).size()), "",
               static_cast<int>(std::string(argv0).size()), "",
               static_cast<int>(std::string(argv0).size()), "",
               static_cast<int>(std::string(argv0).size()), "");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  analysis::DiagEngine diags;
  analysis::LintOptions options;
  bool json = false;
  std::string json_path;
  bool builtin = false;
  bool rtos_prelude = false;
  bool stats_flag = false;
  long max_warnings = 0;
  std::vector<std::string> sources;
  std::vector<std::string> frame_files;
  std::vector<std::string> conform_files;
  bool protocol = false;
  bool faults = false;
  std::optional<analysis::EnvOptions> custom_env;
  std::string model_filter;
  analysis::ModelOptions model_options;
  std::size_t channel_cap = 2;
  std::string emit_test_dir;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      if (json_path.empty()) {
        std::fprintf(stderr, "--json=FILE needs a path\n");
        return 2;
      }
    } else if (arg == "--no-flow") {
      options.flow = false;
    } else if (arg == "--no-interproc") {
      options.interproc = false;
    } else if (arg == "--context-k" || arg.rfind("--context-k=", 0) == 0) {
      const char* text = arg == "--context-k" ? next() : arg.c_str() + 12;
      if (text == nullptr) return usage(argv[0]);
      auto value = util::parse_int(text);
      if (!value || *value < 0 || *value > 8) {
        std::fprintf(stderr, "--context-k: bad depth '%s' (expected 0..8)\n", text);
        return 2;
      }
      options.context_k = static_cast<std::size_t>(*value);
    } else if (arg == "--stats") {
      stats_flag = true;
    } else if (arg == "--mem-size") {
      const char* text = next();
      if (text == nullptr) return usage(argv[0]);
      auto value = util::parse_int(text);
      if (!value || *value <= 0) {
        std::fprintf(stderr, "--mem-size: bad size '%s'\n", text);
        return 2;
      }
      options.mem_size = static_cast<std::uint64_t>(*value);
    } else if (arg == "--max-warnings") {
      const char* text = next();
      if (text == nullptr) return usage(argv[0]);
      auto value = util::parse_int(text);
      if (!value || *value < 0) {
        std::fprintf(stderr, "--max-warnings: bad count '%s'\n", text);
        return 2;
      }
      max_warnings = static_cast<long>(*value);
    } else if (arg == "--builtin") {
      builtin = true;
    } else if (arg == "--rtos-prelude") {
      rtos_prelude = true;
    } else if (arg == "--suppress") {
      const char* rule = next();
      if (rule == nullptr) return usage(argv[0]);
      diags.suppress_rule(rule);
    } else if (arg == "--ports") {
      const char* list = next();
      if (list == nullptr) return usage(argv[0]);
      for (std::string_view port : util::split(list, ',')) {
        port = util::trim(port);
        if (!port.empty()) options.known_ports.emplace_back(port);
      }
    } else if (arg == "--base") {
      const char* text = next();
      if (text == nullptr) return usage(argv[0]);
      auto value = util::parse_int(text);
      if (!value || *value < 0) {
        std::fprintf(stderr, "--base: bad address '%s'\n", text);
        return 2;
      }
      options.base = static_cast<std::uint32_t>(*value);
    } else if (arg == "--frames") {
      const char* path = next();
      if (path == nullptr) return usage(argv[0]);
      frame_files.emplace_back(path);
    } else if (arg == "--protocol") {
      protocol = true;
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--env" || arg.rfind("--env=", 0) == 0) {
      const char* list = arg == "--env" ? next() : arg.c_str() + 6;
      if (list == nullptr) return usage(argv[0]);
      custom_env = analysis::EnvOptions{};
      for (std::string_view flag : util::split(list, ',')) {
        flag = util::trim(flag);
        if (flag == "lossy") {
          custom_env->lossy = true;
        } else if (flag == "duplicating") {
          custom_env->duplicating = true;
        } else if (flag == "corrupting") {
          custom_env->corrupting = true;
        } else if (flag == "disconnecting") {
          custom_env->disconnecting = true;
        } else if (flag == "crash") {
          custom_env->crashing = true;
        } else if (!flag.empty()) {
          std::fprintf(stderr, "--env: unknown behavior '%.*s'\n",
                       static_cast<int>(flag.size()), flag.data());
          return 2;
        }
      }
    } else if (arg == "--no-recovery") {
      model_options.recovery = false;
    } else if (arg == "--no-push") {
      model_options.push_outputs = false;
    } else if (arg == "--no-interrupts") {
      model_options.interrupts = false;
    } else if (arg == "--no-sideband") {
      model_options.sideband = false;
    } else if (arg == "--no-reply-log") {
      model_options.worker_reply_log = false;
    } else if (arg == "--eager-prune") {
      model_options.worker_eager_prune = true;
    } else if (arg == "--model" || arg.rfind("--model=", 0) == 0) {
      const char* name = arg == "--model" ? next() : arg.c_str() + 8;
      if (name == nullptr) return usage(argv[0]);
      if (!analysis::model_from_name(name)) {
        std::fprintf(stderr, "--model: unknown model '%s'\n", name);
        return 2;
      }
      model_filter = name;
    } else if (arg == "--channel-cap") {
      const char* text = next();
      if (text == nullptr) return usage(argv[0]);
      auto value = util::parse_int(text);
      if (!value || *value < 1) {
        std::fprintf(stderr, "--channel-cap: bad capacity '%s'\n", text);
        return 2;
      }
      channel_cap = static_cast<std::size_t>(*value);
    } else if (arg == "--conform") {
      const char* path = next();
      if (path == nullptr) return usage(argv[0]);
      conform_files.emplace_back(path);
    } else if (arg == "--emit-test" || arg.rfind("--emit-test=", 0) == 0) {
      const char* dir = arg == "--emit-test" ? next() : arg.c_str() + 12;
      if (dir == nullptr || *dir == '\0') {
        std::fprintf(stderr, "--emit-test needs a directory\n");
        return 2;
      }
      emit_test_dir = dir;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "-" || arg[0] != '-') {
      sources.push_back(arg);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (sources.empty() && frame_files.empty() && conform_files.empty() && !builtin && !protocol) {
    return usage(argv[0]);
  }
  if (!emit_test_dir.empty() && !protocol) {
    std::fprintf(stderr, "--emit-test needs --protocol (it compiles counterexamples)\n");
    return 2;
  }

  // Per-file "summaries" JSON members from the interprocedural pass, plus
  // the aggregated precision counters for --stats.
  std::string summaries_json;
  analysis::LintStats stats_total;
  auto collect_summaries = [&](const analysis::LintResult& result, const std::string& file) {
    stats_total.functions += result.stats.functions;
    stats_total.clones += result.stats.clones;
    stats_total.havoc_summaries += result.stats.havoc_summaries;
    stats_total.narrowing_iterations += result.stats.narrowing_iterations;
    stats_total.clone_overflows += result.stats.clone_overflows;
    if (result.summaries_json.empty()) return;
    if (!summaries_json.empty()) summaries_json += ",";
    summaries_json += "{\"file\":\"" + analysis::json_escape(file) + "\"," +
                      result.summaries_json + "}";
  };

  for (const std::string& path : sources) {
    std::string text;
    if (path == "-") {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      text = buf.str();
    } else if (!read_file(path, text)) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    if (rtos_prelude) text = rtos::guest_abi_prelude() + text;
    const std::string file = path == "-" ? "<stdin>" : path;
    collect_summaries(analysis::lint_guest_source(text, file, diags, options), file);
  }

  if (builtin) {
    collect_summaries(
        analysis::lint_guest_source(
            router::word_stream_checksum_source("router.to_cpu", "router.from_cpu"),
            "<builtin:checksum_gdb>", diags, options),
        "<builtin:checksum_gdb>");
    collect_summaries(
        analysis::lint_guest_source(rtos::guest_abi_prelude() + router::bulk_checksum_source(),
                                    "<builtin:checksum_driver>", diags, options),
        "<builtin:checksum_driver>");
  }

  for (const std::string& path : frame_files) {
    std::string bytes;
    if (!read_file(path, bytes)) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    analysis::check_frames(
        std::span(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()), diags,
        path);
  }

  // Conformance replay of wire-capture post-mortems. The model defaults to
  // driver-kernel (the scheme whose captures the examples ship); RSP
  // captures need an explicit --model.
  for (const std::string& path : conform_files) {
    std::string bytes;
    if (!read_file(path, bytes)) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    const analysis::ModelId id =
        model_filter.empty() ? analysis::ModelId::DriverKernel
                             : *analysis::model_from_name(model_filter);
    const analysis::ProtocolModel model = analysis::make_model(id, model_options);
    analysis::check_capture(
        std::span(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()), model,
        diags, path);
  }

  // Model-check the protocol automata; violations become NL41x errors.
  std::string protocol_json;
  if (protocol) {
    analysis::EnvOptions env =
        custom_env ? *custom_env
                   : (faults ? analysis::EnvOptions::faulty() : analysis::EnvOptions{});
    env.channel_capacity = channel_cap;
    std::vector<analysis::ModelId> ids;
    if (model_filter.empty()) {
      ids = {analysis::ModelId::DriverKernel, analysis::ModelId::GdbKernel,
             analysis::ModelId::GdbWrapper, analysis::ModelId::Worker,
             analysis::ModelId::DriverIrq};
    } else {
      ids = {*analysis::model_from_name(model_filter)};
    }
    protocol_json = "\"protocol\":[";
    for (std::size_t i = 0; i < ids.size(); ++i) {
      analysis::EnvOptions model_env = env;
      if (ids[i] == analysis::ModelId::Worker && faults && !custom_env) {
        // The worker wire rides a reliable SOCK_STREAM socketpair, so its
        // adversary is not byte-level wire faults but SIGKILL: --faults
        // composes this model with the crash environment instead.
        model_env = analysis::EnvOptions{};
        model_env.channel_capacity = channel_cap;
        model_env.crashing = true;
      }
      const analysis::ProtocolModel model = analysis::make_model(ids[i], model_options);
      const analysis::ExploreReport report = analysis::explore(model, model_env);
      analysis::report_violations(report, diags);
      if (i > 0) protocol_json += ",";
      protocol_json += analysis::render_json(report);
      if (!json) std::fputs(analysis::render_text(report).c_str(), stdout);
      if (!emit_test_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(emit_test_dir, ec);
        const std::filesystem::path out_path =
            std::filesystem::path(emit_test_dir) / analysis::emitted_test_filename(ids[i]);
        std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
        out << analysis::emit_regression_tests(report, ids[i], model_options, model_env);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", out_path.string().c_str());
          return 2;
        }
        if (!json) {
          std::fprintf(stdout, "emitted %s (%zu counterexamples)\n",
                       out_path.string().c_str(), report.violations.size());
        }
      }
    }
    protocol_json += "]";
  }

  // Extra --json members: the protocol exploration, the per-file
  // interprocedural summary dumps, and the --stats precision counters (all
  // optional, schema stays 1).
  std::string extra_json = protocol_json;
  if (!summaries_json.empty()) {
    if (!extra_json.empty()) extra_json += ",";
    extra_json += "\"summaries\":[" + summaries_json + "]";
  }
  if (stats_flag) {
    if (!extra_json.empty()) extra_json += ",";
    extra_json += "\"stats\":{\"context_k\":" + std::to_string(options.context_k) +
                  ",\"functions\":" + std::to_string(stats_total.functions) +
                  ",\"clones\":" + std::to_string(stats_total.clones) +
                  ",\"havoc_summaries\":" + std::to_string(stats_total.havoc_summaries) +
                  ",\"narrowing_iterations\":" + std::to_string(stats_total.narrowing_iterations) +
                  ",\"clone_overflows\":" + std::to_string(stats_total.clone_overflows) + "}";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    out << analysis::render_json(diags, extra_json) << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
  }
  if (json) {
    std::fputs(analysis::render_json(diags, extra_json).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(analysis::render_text(diags).c_str(), stdout);
    if (stats_flag) {
      std::printf(
          "stats: %zu functions, %zu clones (k=%zu), %zu havoc'd summaries, "
          "%zu narrowing iterations, %zu clone overflows\n",
          stats_total.functions, stats_total.clones, options.context_k,
          stats_total.havoc_summaries, stats_total.narrowing_iterations,
          stats_total.clone_overflows);
    }
  }
  // Notes never gate the exit status; warnings do once they exceed the
  // --max-warnings budget.
  bool findings = diags.errors() > 0 ||
                  diags.warnings() > static_cast<std::size_t>(max_warnings);
  return findings ? 1 : 0;
}
