// cosim_trace: cross-process Chrome-trace plumbing (DESIGN.md §10.5).
//
//   cosim_trace merge --out OUT.json IN.json[:LABEL[:OFFSET_NS]]...
//       Merges N per-process Chrome trace dumps into one Perfetto-loadable
//       file: input K becomes pid K+1 with LABEL as its process_name, and
//       every timestamp is shifted by OFFSET_NS (the clock offset the
//       supervisor measured for that process) so all tracks share one
//       timeline.
//
//   cosim_trace demo --worker PATH [--out-dir DIR]
//       Runs a quick supervisor+worker session with tracing and the obs
//       side-band enabled, then writes sup.json / worker.json (per-process
//       dumps), merged.json (the supervisor's native merge) and
//       merged_from_files.json (the same merge reproduced through the merge
//       subcommand's code path). The CI perf-smoke job uploads the result.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diag.hpp"
#include "analysis/protocol.hpp"
#include "cosim/supervisor.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

using nisc::util::JsonValue;

namespace {

int fail_usage() {
  std::fprintf(stderr,
               "usage: cosim_trace merge --out OUT.json IN.json[:LABEL[:OFFSET_NS]]...\n"
               "       cosim_trace demo --worker PATH [--out-dir DIR]\n");
  return 2;
}

// -- generic JSON re-emission (util::JsonValue is parse-only) ---------------

void write_json(std::ostream& out, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::Null:
      out << "null";
      break;
    case JsonValue::Kind::Bool:
      out << (v.as_bool() ? "true" : "false");
      break;
    case JsonValue::Kind::Number: {
      const double d = v.as_double();
      // Integers re-emit exactly; everything else keeps full precision.
      if (d == static_cast<double>(static_cast<long long>(d))) {
        out << static_cast<long long>(d);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        out << buf;
      }
      break;
    }
    case JsonValue::Kind::String: {
      out << '"';
      for (const char c : v.as_string()) {
        if (c == '"' || c == '\\') {
          out << '\\' << c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
      }
      out << '"';
      break;
    }
    case JsonValue::Kind::Array: {
      out << '[';
      bool first = true;
      for (const JsonValue& item : v.as_array()) {
        if (!first) out << ',';
        first = false;
        write_json(out, item);
      }
      out << ']';
      break;
    }
    case JsonValue::Kind::Object: {
      out << '{';
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out << ',';
        first = false;
        out << '"' << key << "\":";
        write_json(out, value);
      }
      out << '}';
      break;
    }
  }
}

// -- merge ------------------------------------------------------------------

struct MergeInput {
  std::string path;
  std::string label;          ///< empty = keep the file's own process_name
  long long offset_ns = 0;
};

/// Parses "PATH[:LABEL[:OFFSET_NS]]". PATHs containing ':' need the long
/// form with an explicit label.
MergeInput parse_merge_input(const std::string& spec) {
  MergeInput input;
  const std::size_t first = spec.find(':');
  if (first == std::string::npos) {
    input.path = spec;
    return input;
  }
  input.path = spec.substr(0, first);
  const std::size_t second = spec.find(':', first + 1);
  if (second == std::string::npos) {
    input.label = spec.substr(first + 1);
  } else {
    input.label = spec.substr(first + 1, second - first - 1);
    input.offset_ns = std::atoll(spec.c_str() + second + 1);
  }
  return input;
}

void emit_event(std::ostream& out, const JsonValue& event, unsigned pid, double offset_us,
                bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << '{';
  bool first_field = true;
  bool wrote_pid = false;
  for (const auto& [key, value] : event.as_object()) {
    if (!first_field) out << ',';
    first_field = false;
    out << '"' << key << "\":";
    if (key == "pid") {
      out << pid;
      wrote_pid = true;
    } else if (key == "ts" && value.is_number()) {
      double ts = value.as_double() + offset_us;
      if (ts < 0) ts = 0;
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", ts);
      out << buf;
    } else {
      write_json(out, value);
    }
  }
  if (!wrote_pid) {
    if (!first_field) out << ',';
    out << "\"pid\":" << pid;
  }
  out << '}';
}

int merge(const std::string& out_path, const std::vector<MergeInput>& inputs) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const MergeInput& input = inputs[i];
    const unsigned pid = static_cast<unsigned>(i) + 1;
    const double offset_us = static_cast<double>(input.offset_ns) / 1000.0;
    const JsonValue doc = nisc::util::parse_json_file(input.path);
    const JsonValue* events = doc.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      std::fprintf(stderr, "cosim_trace: %s: no traceEvents array\n", input.path.c_str());
      return 2;
    }
    if (!input.label.empty()) {
      if (!first) out << ",\n";
      first = false;
      out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
          << ",\"tid\":0,\"ts\":0,\"args\":{\"name\":\"" << input.label << "\"}}";
    }
    for (const JsonValue& event : events->as_array()) {
      if (!event.is_object()) continue;
      // An explicit label replaces whatever process_name the dump carried.
      if (!input.label.empty()) {
        const JsonValue* name = event.find("name");
        const JsonValue* ph = event.find("ph");
        if (name != nullptr && ph != nullptr && ph->is_string() && ph->as_string() == "M" &&
            name->is_string() && name->as_string() == "process_name") {
          continue;
        }
      }
      emit_event(out, event, pid, offset_us, first);
    }
  }
  out << "\n]}\n";
  std::ofstream file(out_path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "cosim_trace: cannot write %s\n", out_path.c_str());
    return 2;
  }
  file << out.str();
  std::printf("cosim_trace: merged %zu trace(s) into %s\n", inputs.size(), out_path.c_str());
  return 0;
}

// -- demo -------------------------------------------------------------------

// A short guest hammering every correlated path: device writes, synchronous
// reads, interrupt raise + drain.
constexpr const char* kDemoGuest = R"(
_start:
    li   s0, 0
    li   s1, 12
loop:
    slli a0, s0, 2
    addi a1, a0, 3
    addi a0, a0, 0x200
    li   a7, 1
    ecall
    andi t1, s0, 3
    bnez t1, no_irq
    li   a0, 0x100
    andi a1, s0, 7
    li   a7, 1
    ecall
no_irq:
    li   a0, 0x104
    li   a7, 2
    ecall
    li   a7, 3
    ecall
    addi s0, s0, 1
    bne  s0, s1, loop
    li   a0, 0
    li   a7, 0
    ecall
)";

int demo(const std::string& worker_path, const std::string& out_dir) {
  namespace cosim = nisc::cosim;
  namespace obs = nisc::obs;
  obs::enable_tracing();

  cosim::SupervisorConfig cfg;
  cfg.worker_path = worker_path;
  cfg.worker.guest_source = kDemoGuest;
  cfg.worker.mem_size = 1 << 16;
  cfg.worker.ckpt_every = 64;
  cfg.worker.trace = true;
  cfg.obs_export = true;
  cfg.session_label = "demo";
  cfg.trace_out = out_dir + "/merged.json";
  // The data socket speaks the Worker wire format, so the capture replay
  // must decode it with the Worker model — running the Driver-Kernel frame
  // validator over it false-positives on every frame.
  cfg.findings_hook = [](std::span<const std::uint8_t> dump) {
    nisc::analysis::DiagEngine diags;
    nisc::analysis::check_capture(
        dump, nisc::analysis::make_model(nisc::analysis::ModelId::Worker, {}), diags,
        "wire.capture");
    return nisc::analysis::render_text(diags);
  };

  cosim::Supervisor supervisor(std::move(cfg));
  const cosim::SupervisorOutcome outcome = supervisor.run();
  obs::disable_tracing();

  // Per-process dumps, then the same merge through the file path.
  obs::write_chrome_trace(out_dir + "/sup.json");
  obs::ProcessTrace worker_trace;
  worker_trace.snapshot = outcome.worker_trace;
  obs::write_chrome_trace(out_dir + "/worker.json", {&worker_trace, 1});

  std::printf("demo session: halt=%u writes=%llu reads=%llu irqs=%llu clock_offset_ns=%lld\n",
              outcome.guest_halt, static_cast<unsigned long long>(outcome.writes_applied),
              static_cast<unsigned long long>(outcome.reads_served),
              static_cast<unsigned long long>(outcome.irqs_sent),
              static_cast<long long>(outcome.clock_offset_ns));

  std::vector<MergeInput> inputs;
  inputs.push_back({out_dir + "/sup.json", "demo/supervisor", 0});
  inputs.push_back({out_dir + "/worker.json", "demo/worker",
                    static_cast<long long>(outcome.clock_offset_ns)});
  return merge(out_dir + "/merged_from_files.json", inputs);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return fail_usage();
  const std::string command = argv[1];
  try {
    if (command == "merge") {
      std::string out_path;
      std::vector<MergeInput> inputs;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
          out_path = argv[++i];
        } else if (argv[i][0] == '-') {
          return fail_usage();
        } else {
          inputs.push_back(parse_merge_input(argv[i]));
        }
      }
      if (out_path.empty() || inputs.empty()) return fail_usage();
      return merge(out_path, inputs);
    }
    if (command == "demo") {
      std::string worker_path;
      std::string out_dir = ".";
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--worker") == 0 && i + 1 < argc) {
          worker_path = argv[++i];
        } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
          out_dir = argv[++i];
        } else {
          return fail_usage();
        }
      }
      if (worker_path.empty()) return fail_usage();
      return demo(worker_path, out_dir);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cosim_trace: %s\n", e.what());
    return 2;
  }
  return fail_usage();
}
