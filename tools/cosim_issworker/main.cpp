// cosim_issworker: the supervised ISS child process (DESIGN.md §12).
//
// Spawned by cosim::Supervisor with two inherited socketpair descriptors:
//   cosim_issworker --data-fd N --irq-fd M
// Everything else — guest program, checkpoint cadence, injected fault —
// arrives over the data socket in the Start/Resume frame.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "cosim/worker.hpp"
#include "ipc/channel.hpp"
#include "ipc/fd.hpp"

int main(int argc, char** argv) {
  int data_fd = -1;
  int irq_fd = -1;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--data-fd") == 0) {
      data_fd = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--irq-fd") == 0) {
      irq_fd = std::atoi(argv[i + 1]);
    } else {
      std::fprintf(stderr, "cosim_issworker: unknown option %s\n", argv[i]);
      return 2;
    }
  }
  if (data_fd < 0 || irq_fd < 0) {
    std::fprintf(stderr, "usage: cosim_issworker --data-fd N --irq-fd M\n");
    return 2;
  }
  nisc::ipc::Channel data = nisc::ipc::Channel::from_socket(nisc::ipc::Fd(data_fd));
  nisc::ipc::Channel irq = nisc::ipc::Channel::from_socket(nisc::ipc::Fd(irq_fd));
  return nisc::cosim::run_worker(std::move(data), std::move(irq));
}
