// cosim_ckpt: inspect, diff, save and restore session checkpoints
// (DESIGN.md §12).
//
//   cosim_ckpt inspect <file.ckpt>
//       Decodes (verifying magic/version/CRCs) and prints one line per
//       section.
//   cosim_ckpt diff <a.ckpt> <b.ckpt>
//       Field-level comparison; exit 0 when identical, 1 when they differ.
//   cosim_ckpt save <out.ckpt> --program <file.s> [--steps N] [--mem BYTES]
//       Assembles a guest program, runs it for N instructions on a local
//       ISS, and writes the resulting checkpoint.
//   cosim_ckpt restore <file.ckpt> [--steps N]
//       Restores the ISS section into a fresh CPU, optionally continues
//       executing, and prints the resulting state.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "cosim/checkpoint.hpp"
#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "iss/program.hpp"
#include "util/error.hpp"

namespace {

using nisc::cosim::Checkpoint;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw nisc::util::RuntimeError("cannot open " + path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw nisc::util::RuntimeError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
}

int usage() {
  std::fprintf(stderr,
               "usage: cosim_ckpt inspect <file.ckpt>\n"
               "       cosim_ckpt diff <a.ckpt> <b.ckpt>\n"
               "       cosim_ckpt save <out.ckpt> --program <file.s> [--steps N] [--mem BYTES]\n"
               "       cosim_ckpt restore <file.ckpt> [--steps N]\n");
  return 2;
}

int cmd_inspect(const std::string& path) {
  const Checkpoint checkpoint = nisc::cosim::decode_checkpoint(read_file(path));
  std::fputs(nisc::cosim::describe_checkpoint(checkpoint).c_str(), stdout);
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const Checkpoint a = nisc::cosim::decode_checkpoint(read_file(path_a));
  const Checkpoint b = nisc::cosim::decode_checkpoint(read_file(path_b));
  const std::vector<std::string> diffs = nisc::cosim::diff_checkpoints(a, b);
  if (diffs.empty()) {
    std::printf("identical\n");
    return 0;
  }
  for (const std::string& line : diffs) std::printf("%s\n", line.c_str());
  return 1;
}

int cmd_save(const std::string& out_path, const std::string& program_path, std::uint64_t steps,
             std::size_t mem_size) {
  const std::vector<std::uint8_t> source_bytes = read_file(program_path);
  const std::string source(reinterpret_cast<const char*>(source_bytes.data()),
                           source_bytes.size());
  const nisc::iss::Program program = nisc::iss::assemble(source);
  nisc::iss::Cpu cpu(mem_size);
  program.load_into(cpu.mem());
  cpu.set_pc(program.entry);
  const nisc::iss::Halt halt = cpu.run(steps);
  Checkpoint checkpoint;
  checkpoint.iss = nisc::cosim::IssSnapshot::capture(cpu);
  write_file(out_path, nisc::cosim::encode_checkpoint(checkpoint));
  std::printf("saved %s after %llu instruction(s), halt=%s\n", out_path.c_str(),
              static_cast<unsigned long long>(cpu.instret()), nisc::iss::halt_name(halt));
  return 0;
}

int cmd_restore(const std::string& path, std::uint64_t steps) {
  const Checkpoint checkpoint = nisc::cosim::decode_checkpoint(read_file(path));
  if (!checkpoint.iss) {
    std::fprintf(stderr, "cosim_ckpt: %s has no ISS section to restore\n", path.c_str());
    return 2;
  }
  nisc::iss::Cpu cpu(static_cast<std::size_t>(checkpoint.iss->mem_size));
  checkpoint.iss->apply(cpu);
  if (steps > 0) {
    const nisc::iss::Halt halt = cpu.run(steps);
    std::printf("continued %llu -> %llu instruction(s), halt=%s\n",
                static_cast<unsigned long long>(checkpoint.iss->instret),
                static_cast<unsigned long long>(cpu.instret()), nisc::iss::halt_name(halt));
  }
  Checkpoint now;
  now.iss = nisc::cosim::IssSnapshot::capture(cpu);
  std::fputs(nisc::cosim::describe_checkpoint(now).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "inspect") return cmd_inspect(argv[2]);
    if (cmd == "diff") {
      if (argc < 4) return usage();
      return cmd_diff(argv[2], argv[3]);
    }
    if (cmd == "save" || cmd == "restore") {
      std::string program_path;
      std::uint64_t steps = cmd == "save" ? 100000 : 0;
      std::size_t mem_size = 1 << 20;
      for (int i = 3; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--program") == 0) {
          program_path = argv[i + 1];
        } else if (std::strcmp(argv[i], "--steps") == 0) {
          steps = std::strtoull(argv[i + 1], nullptr, 10);
        } else if (std::strcmp(argv[i], "--mem") == 0) {
          mem_size = std::strtoull(argv[i + 1], nullptr, 10);
        } else {
          return usage();
        }
      }
      if (cmd == "restore") return cmd_restore(argv[2], steps);
      if (program_path.empty()) return usage();
      return cmd_save(argv[2], program_path, steps, mem_size);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cosim_ckpt: %s\n", e.what());
    return 2;
  }
  return usage();
}
