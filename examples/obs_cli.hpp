// Shared --trace-out=FILE / --stats-out=FILE handling for the example
// binaries: --trace-out enables the span tracer and dumps a Chrome
// trace_event JSON (load it in Perfetto or chrome://tracing); --stats-out
// dumps the metrics-registry snapshot. Both are off by default, so the
// undecorated examples stay sink-free.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nisc::examples {

struct ObsCli {
  std::string trace_out;
  std::string stats_out;

  /// Parses the observability flags (unknown arguments are ignored) and
  /// enables tracing when --trace-out is requested.
  static ObsCli parse(int argc, char** argv) {
    ObsCli cli;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--trace-out=", 12) == 0) {
        cli.trace_out = arg + 12;
      } else if (std::strncmp(arg, "--stats-out=", 12) == 0) {
        cli.stats_out = arg + 12;
      } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
        std::printf("usage: %s [--trace-out=FILE] [--stats-out=FILE]\n"
                    "  --trace-out=FILE  Chrome trace_event JSON (Perfetto-loadable)\n"
                    "  --stats-out=FILE  metrics registry snapshot (JSON)\n",
                    argv[0]);
      }
    }
    if (!cli.trace_out.empty()) obs::enable_tracing();
    return cli;
  }

  /// Writes the requested sinks; call once after the simulation finished.
  void finish() const {
    if (!trace_out.empty()) {
      if (obs::write_chrome_trace(trace_out)) {
        std::printf("trace written to %s (%llu events, %llu dropped)\n", trace_out.c_str(),
                    static_cast<unsigned long long>(obs::trace_event_count()),
                    static_cast<unsigned long long>(obs::trace_dropped_count()));
      } else {
        std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
      }
    }
    if (!stats_out.empty()) {
      std::ofstream out(stats_out);
      if (out && obs::MetricsRegistry::exists()) {
        out << obs::MetricsRegistry::instance().render_json() << '\n';
        std::printf("stats written to %s\n", stats_out.c_str());
      } else if (!out) {
        std::fprintf(stderr, "cannot write stats to %s\n", stats_out.c_str());
      } else {
        out << "{\"schema\":1,\"counters\":{},\"gauges\":{},\"histograms\":{}}\n";
      }
    }
  }
};

}  // namespace nisc::examples
