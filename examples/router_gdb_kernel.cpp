// The paper's case study under GDB-Kernel co-simulation (§3 + §5).
//
// A 4x4 packet router modeled in the SystemC-like kernel offloads checksum
// computation to a bare-metal RV32 program running on the ISS. The wrapper
// is embedded in the simulation kernel: guest variables are bound to
// iss_in/iss_out ports via #pragma annotations, breakpoints drive the data
// exchange, and the modified scheduler polls the GDB pipe at every cycle.
//
//   $ ./router_gdb_kernel [--trace-out=FILE] [--stats-out=FILE]
#include <cstdio>

#include "obs_cli.hpp"
#include "router/testbench.hpp"

using namespace nisc;
using namespace nisc::sysc::time_literals;

int main(int argc, char** argv) {
  examples::ObsCli obs_cli = examples::ObsCli::parse(argc, argv);
  router::TestbenchConfig config;
  config.scheme = router::Scheme::GdbKernel;
  config.packets_per_producer = 25;
  config.num_producers = 4;
  config.inter_packet_delay = 2_us;
  config.instructions_per_us = 400000;

  std::printf("== %s co-simulation of the 4x4 router ==\n",
              router::scheme_name(config.scheme));
  std::printf("guest program (filtered excerpt):\n%s...\n\n",
              router::word_stream_checksum_source("router.to_cpu", "router.from_cpu")
                  .substr(0, 420)
                  .c_str());

  router::Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(100, sysc::SC_MS));
  router::TestbenchReport r = bench.report();

  std::printf("simulated time    : %s\n", r.sim_time.to_string().c_str());
  std::printf("wall clock        : %.3f s\n", r.wall_seconds);
  std::printf("packets produced  : %llu\n", static_cast<unsigned long long>(r.produced));
  std::printf("packets received  : %llu (%.1f%% forwarded)\n",
              static_cast<unsigned long long>(r.received), r.forwarded_pct);
  std::printf("checksum verified : %llu ok, %llu bad\n",
              static_cast<unsigned long long>(r.checksum_ok),
              static_cast<unsigned long long>(r.checksum_bad));
  std::printf("breakpoint events : %llu (RSP transactions %llu)\n",
              static_cast<unsigned long long>(r.breakpoint_events),
              static_cast<unsigned long long>(r.rsp_transactions));
  bench.shutdown();
  obs_cli.finish();
  return (r.received == r.produced && r.checksum_bad == 0) ? 0 : 1;
}
