// The §3.2 pragma filter as a standalone tool.
//
// Paper: "A special pragma, containing the name of the variable, is
// inserted before the line where the breakpoint is to be set. A simple
// filter automatically generates the proper GDB script for execution of
// the program, and a text file to be used by the SystemC hardware
// programmer that contains a map of the type <variable> <line>."
//
// Usage:
//   ./pragma_filter_tool <guest.s>      # read a file
//   ./pragma_filter_tool -              # read stdin
//   ./pragma_filter_tool                # run on a built-in demo source
//
// Prints three artifacts: the transformed assembly, the generated GDB
// script, and the <variable> <address> map.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cosim/pragma.hpp"
#include "iss/assembler.hpp"

using namespace nisc;

namespace {

constexpr const char* kDemo = R"(
_start:
    la t1, in_var
    #pragma iss_out("hw.to_cpu", in_var)
    lw t0, 0(t1)
    slli t0, t0, 1
    la t2, out_var
    #pragma iss_in("hw.from_cpu", out_var)
    sw t0, 0(t2)
    nop
    ebreak
in_var:  .word 0
out_var: .word 0
)";

std::string read_source(int argc, char** argv) {
  if (argc < 2) return kDemo;
  if (std::string(argv[1]) == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    return buf.str();
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    std::exit(1);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = read_source(argc, argv);

  cosim::FilteredSource filtered;
  iss::Program program;
  try {
    filtered = cosim::filter_pragmas(source);
    program = iss::assemble(filtered.source);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  auto bindings = cosim::resolve_bindings(filtered.bindings, program);

  std::printf("# ---- transformed source (synthetic breakpoint labels) ----\n%s\n",
              filtered.source.c_str());

  std::printf("# ---- generated GDB script ----\n");
  std::printf("target remote :1234\n");
  for (const auto& b : bindings) {
    std::printf("break *0x%x   # %s %s <-> port %s\n", b.breakpoint_addr,
                b.direction == cosim::BindDirection::IssToSc ? "iss_in " : "iss_out",
                b.variable.c_str(), b.port.c_str());
  }
  std::printf("continue\n\n");

  std::printf("# ---- <variable> <address> map for the SystemC programmer ----\n");
  for (const auto& b : bindings) {
    std::printf("%-16s 0x%08x  (breakpoint 0x%08x, %s, port %s)\n", b.variable.c_str(),
                b.variable_addr, b.breakpoint_addr,
                b.direction == cosim::BindDirection::IssToSc ? "ISS->SC" : "SC->ISS",
                b.port.c_str());
  }
  return 0;
}
