// Interrupt handling under Driver-Kernel co-simulation (paper §4).
//
// The ability to model interrupts is the Driver-Kernel scheme's qualitative
// advantage over GDB-Kernel ("modeling an interrupt in the GDB-Kernel
// scheme would require to stop GDB execution at any instruction, thus
// degrading the performance unacceptably").
//
// A SystemC timer device raises a periodic interrupt; the guest attaches an
// ISR through the RTOS, counts invocations and acknowledges each interrupt
// by writing its count back through the device driver. The example prints
// the interrupt fan-in statistics.
//
//   $ ./interrupt_latency
#include <chrono>
#include <cstdio>

#include "cosim/driver_kernel.hpp"
#include "cosim/session.hpp"
#include "sysc/sysc.hpp"

using namespace nisc;
using namespace nisc::sysc::time_literals;

namespace {

constexpr const char* kIsrGuest = R"(
# Count timer interrupts; acknowledge each by dev-writing the count.
_start:
    la a1, isr
    li a0, 9            # IRQ line 9: the SystemC timer
    li a7, SYS_IRQ_ATTACH
    ecall
main_loop:
    la t0, done
    lw t1, 0(t0)
    beqz t1, main_loop  # spin: all the work happens in the ISR
    li a7, SYS_EXIT
    ecall
isr:
    la t0, count
    lw t1, 0(t0)
    addi t1, t1, 1
    sw t1, 0(t0)
    sw t1, 0(t0)        # keep `count` hot for the ack below
    la a1, count
    li a0, 0
    li a2, 4
    li a7, SYS_DEV_WRITE
    ecall
    li t2, 10
    blt t1, t2, isr_done
    la t0, done
    sw t2, 0(t0)
isr_done:
    ret
count: .word 0
done:  .word 0
)";

/// SystemC timer: posts an interrupt every `period` through the extension.
struct TimerDevice : sysc::sc_module {
  TimerDevice(std::string name, cosim::DriverKernelExtension& ext, sysc::sc_time period)
      : sc_module(std::move(name)), ext_(ext), period_(period) {
    declare_thread("tick", &TimerDevice::tick);
  }
  void tick() {
    for (;;) {
      sysc::wait(period_);
      ext_.post_interrupt(9);
      ++raised;
    }
  }
  cosim::DriverKernelExtension& ext_;
  sysc::sc_time period_;
  int raised = 0;
};

}  // namespace

int main() {
  sysc::sc_simcontext ctx;
  auto& clk = ctx.create<sysc::sc_clock>("clk", 10_ns);
  (void)clk;
  auto& ack_port = ctx.create<sysc::iss_in<std::uint32_t>>("timer.ack");
  auto& unused_out = ctx.create<sysc::iss_out<std::uint32_t>>("timer.unused");
  (void)unused_out;

  cosim::DriverTargetConfig config;
  config.write_port = "timer.ack";
  config.read_port = "timer.unused";
  cosim::DriverTarget target(kIsrGuest, config);

  cosim::DriverKernelOptions options;
  options.instructions_per_us = 1000000;
  cosim::DriverKernelExtension ext(target.take_data_endpoint(),
                                   target.take_interrupt_endpoint(), &target.budget(), options);
  ctx.register_extension(&ext);
  auto& timer = ctx.create<TimerDevice>("timer", ext, 5_us);
  target.start();

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!target.finished() && std::chrono::steady_clock::now() < deadline) {
    ctx.run(10_us);
  }
  ctx.run(10_us);  // drain the last in-flight acknowledgments

  std::printf("== Driver-Kernel interrupt path ==\n");
  std::printf("timer interrupts raised    : %d\n", timer.raised);
  std::printf("interrupts sent to driver  : %llu\n",
              static_cast<unsigned long long>(ext.stats().interrupts_sent));
  std::printf("ISR dispatches in the RTOS : %llu\n",
              static_cast<unsigned long long>(target.kernel().stats().isr_dispatches));
  std::printf("last acknowledged count    : %u\n", ack_port.read());
  std::printf("guest finished             : %s\n", target.finished() ? "yes" : "no");
  target.shutdown();
  ctx.unregister_extension(&ext);
  // A straggler interrupt may land between count==10 and the guest's exit,
  // so accept >= 10 acknowledgments.
  return (target.finished() && ack_port.read() >= 10) ? 0 : 1;
}
