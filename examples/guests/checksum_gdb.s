# Checksum application, GDB-Kernel flavor (bare metal) — on-disk twin of
# nisc::router::word_stream_checksum_source("router.to_cpu",
# "router.from_cpu") with the default 6-word packet size, kept as a
# cosim_lint target for CI:
#
#   cosim_lint --ports router.to_cpu,router.from_cpu examples/guests/checksum_gdb.s
#
# Receives packet words one at a time through `word_in` and returns the
# 32-bit word-sum checksum through `csum_out`.
_start:
main_loop:
    li s1, 6
    li s2, 0
    la t1, word_in
word_loop:
    #pragma iss_out("router.to_cpu", word_in)
    lw t0, 0(t1)
    add s2, s2, t0
    addi s1, s1, -1
    bnez s1, word_loop
    la t2, csum_out
    #pragma iss_in("router.from_cpu", csum_out)
    sw s2, 0(t2)
    nop
    j main_loop
word_in:  .word 0
csum_out: .word 0
