# Multi-function clean guest: _start calls checksum over a 4-word buffer;
# checksum keeps its cursor and count in s0/s1 — spilled and reloaded per
# the ABI — and delegates each step to `accumulate`. cosim_lint must
# produce zero findings on this file: the interprocedural pass has to see
# through the spill/reload pairs, the balanced frames, and the call chain.
_start:
    li sp, 0x8000
    la a0, buf
    li a1, 4
    call checksum
    la t0, out
    sw a0, 0(t0)
    ebreak

checksum:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw s0, 8(sp)
    sw s1, 4(sp)
    mv s0, a0
    mv s1, a1
    li a0, 0
loop:
    beqz s1, done
    lw a1, 0(s0)
    call accumulate
    addi s0, s0, 4
    addi s1, s1, -1
    j loop
done:
    lw ra, 12(sp)
    lw s0, 8(sp)
    lw s1, 4(sp)
    addi sp, sp, 16
    ret

accumulate:
    add a0, a0, a1
    ret

buf: .word 1
     .word 2
     .word 3
     .word 4
out: .word 0
