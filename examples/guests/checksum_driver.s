# Checksum application, Driver-Kernel flavor (runs on the RTOS) — on-disk
# twin of nisc::router::bulk_checksum_source() with the default 6-word
# packet size, kept as a cosim_lint target for CI:
#
#   cosim_lint --rtos-prelude examples/guests/checksum_driver.s
#
# Reads a whole packet from the SystemC device (dev 0) via SYS_DEV_READ,
# checksums it and writes the result back through the driver. No pragmas:
# the Driver-Kernel scheme crosses the ISS boundary through syscalls, not
# breakpoints.
_start:
main_loop:
    li s3, 24
    la s2, buf
read_loop:
    li a0, 0
    mv a1, s2
    mv a2, s3
    li a7, SYS_DEV_READ
    ecall
    add s2, s2, a0
    sub s3, s3, a0
    bnez s3, read_loop
    la t1, buf
    li s1, 6
    li s2, 0
sum_loop:
    lw t0, 0(t1)
    add s2, s2, t0
    addi t1, t1, 4
    addi s1, s1, -1
    bnez s1, sum_loop
    la t1, out
    sw s2, 0(t1)
    li a0, 0
    la a1, out
    li a2, 4
    li a7, SYS_DEV_WRITE
    ecall
    j main_loop
buf: .space 24
out: .word 0
