# NL311 fixture: the first call hands `scale` an uninitialized t2 — the
# helper folds it into its result, so garbage flows out of the call. The
# second call writes t2 first and is clean; only the first site is flagged.
_start:
    li sp, 0x10000
    li t0, 7
    call scale
    la t3, out
    sw a0, 0(t3)
    li t2, 5
    li t0, 7
    call scale
    sw a0, 0(t3)
    ebreak

scale:
    mv a0, t0
    add a0, a0, t2
    ret

out: .word 0
