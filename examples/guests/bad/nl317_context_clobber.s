# NL317 fixture: `scramble` zeroes s1 without spilling it, and `echo`
# forwards s1 to memory after that call. Whether data is lost depends on
# the caller: the first call never initialized s1 (the echoed value is
# garbage either way), but the second loaded 77 and expects it echoed to
# `out_b` — the store writes scramble's 0 instead. The context join sees s1
# only as maybe-initialized at the call (Mixed), so NL314 cannot claim the
# clobber; the k = 1 clone of the second call string proves it.
_start:
    li sp, 0x10000
    la a0, out_a
    call echo              # s1 carries no value here — clobber harmless
    li s1, 77
    la a0, out_b
    call echo              # s1 = 77 is live through the call — clobbered
    ebreak

echo:
    addi sp, sp, -16
    sw ra, 12(sp)
    call scramble
    sw s1, 0(a0)
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

scramble:
    li s1, 0
    ret

out_a: .word 0
out_b: .word 0
