# NL312 fixture: store_word dereferences its a0 argument. The first call
# passes the address of `out` (inside the map) and is clean; the second
# passes 0x200000 — past the 1 MiB memory map — so the helper's store
# faults on every path through that site.
_start:
    li sp, 0x10000
    la a0, out
    li a1, 1
    call store_word
    li a0, 0x200000
    li a1, 2
    call store_word
    ebreak

store_word:
    sw a1, 0(a0)
    ret

out: .word 0
