# NL301 fixture: the iss_out breakpoint is unreachable. The jump at _start
# skips straight over the annotated load and nothing in the program ever
# branches back to it, so the ISS can never stop on the breakpoint.
_start:
    j spin
    la t1, pkt
    #pragma iss_out("router.to_cpu", pkt)
    lw t0, 0(t1)
spin:
    ebreak

pkt: .word 0
