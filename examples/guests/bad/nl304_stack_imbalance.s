# NL304 fixture: leaf allocates a 16-byte frame but only releases 8 bytes
# before returning, so every call leaks 8 bytes of stack.
_start:
    li sp, 0x10000
    call leaf
    ebreak

leaf:
    addi sp, sp, -16
    sw ra, 12(sp)
    lw ra, 12(sp)
    addi sp, sp, 8
    ret
