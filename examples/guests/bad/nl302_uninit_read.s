# NL302 fixture: t0 and t2 are read by the add before anything ever writes
# them — on every path from the entry, since there is only one.
_start:
    add t1, t0, t2
    la t3, out
    sw t1, 0(t3)
    ebreak

out: .word 0
