# NL313 fixture: `leak` under-releases its frame, and `run` inherits the
# 8-byte displacement through the call — run's own stack arithmetic is
# balanced, so only the cross-call view can pin run's imbalance on the call
# to leak. (leak itself is also an NL304.)
_start:
    li sp, 0x10000
    call run
    ebreak

run:
    mv s0, ra
    call leak
    mv ra, s0
    ret

leak:
    addi sp, sp, -8
    ret
