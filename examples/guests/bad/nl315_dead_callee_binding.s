# NL315 fixture: `result` is bound to an iss_in port, but the only store
# that writes it lives in `fill` — and nothing ever calls fill. The
# breakpoint is reached with `result` stale on every run, and the
# interprocedural pass names the dead writer.
_start:
    la t0, status
    li t1, 1
    #pragma iss_in("router.from_cpu", result)
    sw t1, 0(t0)
    ebreak

fill:
    la t2, result
    li t3, 99
    sw t3, 0(t2)
    ret

status: .word 0
result: .word 0
