# NL314 fixture: `helper` zeroes s1 without spilling it. The caller loaded
# 123 into s1 before the call and stores it afterwards — the store writes
# helper's 0, not 123. The ABI says s1 is callee-saved.
_start:
    li sp, 0x10000
    li s1, 123
    call helper
    la t0, out
    sw s1, 0(t0)
    ebreak

helper:
    li s1, 0
    ret

out: .word 0
