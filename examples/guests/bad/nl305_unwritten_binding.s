# NL305 fixture: `result` is bound to an iss_in port, but the store that
# writes it sits behind the flag test — when flag is zero the breakpoint is
# reached with the variable never written and the port samples a stale value.
_start:
    la t0, flag
    lw t1, 0(t0)
    beqz t1, skip
    la t2, result
    li t3, 42
    #pragma iss_in("router.from_cpu", result)
    sw t3, 0(t2)
skip:
    nop
    ebreak

flag:   .word 0
result: .word 0
