# NL316 fixture: `_start` repoints sp at a scratch arena whose floor sits on
# the bound variable `flag`, then calls `with_frame`, whose a0-scaled frame
# puts `helper`'s spill slot exactly on flag's word. The first call runs on
# the real stack and is harmless. Only the k = 1 clone of the second call
# string keeps sp and a0 exact through `with_frame` — context-insensitively
# (--context-k=0) the two entry states join to intervals and the clobber is
# unprovable.
_start:
    li sp, 0x10000
    li s0, 0x5AFE
    li a0, 1
    call with_frame        # benign: deep stack, frame in free space
    la sp, arena_top       # arena floor sits on flag
    li a0, 2
    call with_frame        # guilty: helper's spill slot lands on flag
    la t0, flag
    #pragma iss_in("router.from_cpu", flag)
    sw a0, 0(t0)
    ebreak

with_frame:
    addi sp, sp, -16
    sw ra, 12(sp)
    slli t0, a0, 2         # a0-scaled scratch area below the fixed frame
    sub sp, sp, t0
    call helper
    add sp, sp, t0
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

helper:
    addi sp, sp, -16
    sw s0, 8(sp)           # spill slot — overlaps flag in the guilty context
    mv s0, a0
    add a0, s0, s0
    lw s0, 8(sp)
    addi sp, sp, 16
    ret

flag:  .word 0
       .space 28
arena_top: .word 0
