# NL303 fixture: the load targets address 0x200000, provably outside the
# default 1 MiB guest memory map — the ISS would halt with a memory fault.
_start:
    li t0, 0x200000
    lw t1, 0(t0)
    ebreak
