// Quickstart: the niscosim SystemC-like kernel on its own.
//
// Builds a two-stage pipeline — a producer thread pushing numbers through an
// sc_fifo to a consumer thread — plus a clocked counter method, then runs
// the simulation and prints what happened.
//
//   $ ./quickstart
#include <cstdio>

#include "sysc/sysc.hpp"
#include "sysc/vcd_trace.hpp"

using namespace nisc::sysc;
using namespace nisc::sysc::time_literals;

namespace {

struct Pipeline : sc_module {
  explicit Pipeline(std::string name) : sc_module(std::move(name)) {
    declare_thread("produce", &Pipeline::produce);
    declare_thread("consume", &Pipeline::consume);
  }

  void produce() {
    for (int i = 1; i <= 10; ++i) {
      fifo.write(i * i);      // blocks when the FIFO is full
      wait(25_ns);
    }
  }

  void consume() {
    for (int i = 0; i < 10; ++i) {
      int value = fifo.read();  // blocks when the FIFO is empty
      sum += value;
      std::printf("t=%-8s consumed %3d (running sum %d)\n",
                  context().time_stamp().to_string().c_str(), value, sum);
    }
    context().stop();
  }

  sc_fifo<int> fifo{"fifo", 4};
  int sum = 0;
};

struct Counter : sc_module {
  explicit Counter(std::string name) : sc_module(std::move(name)) {
    declare_method("tick", &Counter::tick);
    sensitive << clk.pos();
    dont_initialize();
  }
  void tick() { ++edges; }
  sc_in<bool> clk{"clk"};
  std::uint64_t edges = 0;
};

}  // namespace

int main() {
  sc_simcontext ctx;

  auto& clock = ctx.create<sc_clock>("clk", 10_ns);
  auto& pipeline = ctx.create<Pipeline>("pipeline");
  auto& counter = ctx.create<Counter>("counter");
  counter.clk.bind(clock.signal());

  // Waveforms: open /tmp/quickstart.vcd in gtkwave after the run.
  vcd_trace_file vcd("/tmp/quickstart.vcd", ctx);
  vcd.trace(clock.signal(), "clk");

  sc_time end = ctx.run(1_us);

  std::printf("\nsimulation ended at %s\n", end.to_string().c_str());
  std::printf("pipeline sum  : %d (expected %d)\n", pipeline.sum, 385);
  std::printf("clock posedges: %llu\n", static_cast<unsigned long long>(counter.edges));
  std::printf("delta cycles  : %llu\n",
              static_cast<unsigned long long>(ctx.stats().delta_cycles));
  return pipeline.sum == 385 ? 0 : 1;
}
