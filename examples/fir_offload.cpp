// A second domain-specific scenario: DSP offload.
//
// A SystemC signal chain streams samples to the CPU, which runs a 4-tap FIR
// filter (coefficients 3,5,7,2) in software; filtered samples come back
// through an iss_in port. Demonstrates that the GDB-Kernel binding model
// generalizes beyond the router case study: same pragmas, same kernel
// extension, different application.
//
//   $ ./fir_offload
#include <cstdio>
#include <vector>

#include "cosim/gdb_kernel.hpp"
#include "cosim/session.hpp"
#include "sysc/sysc.hpp"

using namespace nisc;
using namespace nisc::sysc::time_literals;

namespace {

constexpr const char* kFirGuest = R"(
# 4-tap FIR: y[n] = 3*x[n] + 5*x[n-1] + 7*x[n-2] + 2*x[n-3]
_start:
    la s3, delay
loop:
    la t0, sample
    #pragma iss_out("fir.sample_in", sample)
    lw t1, 0(t0)          # next input sample, injected from SystemC
    lw t2, 8(s3)          # shift the delay line
    sw t2, 12(s3)
    lw t2, 4(s3)
    sw t2, 8(s3)
    lw t2, 0(s3)
    sw t2, 4(s3)
    sw t1, 0(s3)
    lw t2, 0(s3)          # accumulate taps
    li t3, 3
    mul s4, t2, t3
    lw t2, 4(s3)
    li t3, 5
    mul t2, t2, t3
    add s4, s4, t2
    lw t2, 8(s3)
    li t3, 7
    mul t2, t2, t3
    add s4, s4, t2
    lw t2, 12(s3)
    slli t2, t2, 1
    add s4, s4, t2
    la t0, result
    #pragma iss_in("fir.result_out", result)
    sw s4, 0(t0)          # filtered sample, captured into SystemC
    nop
    j loop
sample: .word 0
result: .word 0
delay:  .word 0, 0, 0, 0
)";

}  // namespace

int main() {
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  sysc::iss_out<std::uint32_t> sample_in("fir.sample_in");
  sysc::iss_in<std::uint32_t> result_out("fir.result_out");

  // Step input: a constant stream of 100s. The filter output must ramp
  // 300, 800, 1500 and settle at (3+5+7+2)*100 = 1700.
  constexpr int kSamples = 8;
  std::vector<std::uint32_t> outputs;
  auto& collector = ctx.create_method(
      "collect",
      [&] {
        outputs.push_back(result_out.read());
        if (outputs.size() < kSamples) sample_in.write(100);
      },
      sysc::process_kind::IssMethod);
  collector.make_sensitive(result_out.written_event());
  collector.dont_initialize();
  sample_in.write(100);

  cosim::GdbTarget target(kFirGuest);
  cosim::GdbKernelOptions options;
  options.instructions_per_us = 1000000;
  cosim::GdbKernelExtension ext(target.client(), &target.budget(), target.bindings(), options);
  ctx.register_extension(&ext);
  target.start();

  while (outputs.size() < kSamples) ctx.run(1_us);

  std::printf("== FIR offload under GDB-Kernel co-simulation ==\n");
  std::printf("step response: ");
  for (std::uint32_t y : outputs) std::printf("%u ", y);
  std::printf("\n");

  const std::vector<std::uint32_t> expected = {300, 800, 1500, 1700, 1700, 1700, 1700, 1700};
  bool ok = outputs == expected;
  std::printf("expected     : 300 800 1500 1700 1700 1700 1700 1700\n");
  std::printf("match        : %s\n", ok ? "yes" : "NO");
  target.shutdown();
  ctx.unregister_extension(&ext);
  return ok ? 0 : 1;
}
