// The paper's case study under the GDB-Wrapper baseline (ref. [14]).
//
// Same router, same guest program as router_gdb_kernel — but the wrapper is
// an explicit SystemC module whose sc_method performs one blocking RSP
// round trip per clock cycle (lock-step, synchronized through the host OS).
// Compare the wall-clock time against router_gdb_kernel: this is the
// overhead the paper's Table 1 measures.
//
//   $ ./router_gdb_wrapper [--trace-out=FILE] [--stats-out=FILE]
#include <cstdio>

#include "obs_cli.hpp"
#include "router/testbench.hpp"

using namespace nisc;
using namespace nisc::sysc::time_literals;

int main(int argc, char** argv) {
  examples::ObsCli obs_cli = examples::ObsCli::parse(argc, argv);
  router::TestbenchConfig config;
  config.scheme = router::Scheme::GdbWrapper;
  config.packets_per_producer = 25;
  config.num_producers = 4;
  config.inter_packet_delay = 2_us;
  config.instructions_per_us = 400000;

  std::printf("== %s co-simulation of the 4x4 router ==\n",
              router::scheme_name(config.scheme));

  router::Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(100, sysc::SC_MS));
  router::TestbenchReport r = bench.report();

  std::printf("simulated time    : %s\n", r.sim_time.to_string().c_str());
  std::printf("wall clock        : %.3f s\n", r.wall_seconds);
  std::printf("packets produced  : %llu\n", static_cast<unsigned long long>(r.produced));
  std::printf("packets received  : %llu (%.1f%% forwarded)\n",
              static_cast<unsigned long long>(r.received), r.forwarded_pct);
  std::printf("checksum verified : %llu ok, %llu bad\n",
              static_cast<unsigned long long>(r.checksum_ok),
              static_cast<unsigned long long>(r.checksum_bad));
  std::printf("lock-step round trips: %llu (one per active clock cycle)\n",
              static_cast<unsigned long long>(r.lockstep_steps));
  bench.shutdown();
  obs_cli.finish();
  return (r.received == r.produced && r.checksum_bad == 0) ? 0 : 1;
}
