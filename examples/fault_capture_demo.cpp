// Seeded fault injection with a wire-capture post-mortem.
//
// Runs a GDB-Kernel session whose stub-side transport is wrapped in a
// deterministic FaultPlan: the first sizeable frame (the guest's ebreak
// stop reply) is cut after two bytes and the channel closed mid-frame.
// The kernel extension ends the run with a structured CosimError; this
// demo prints the diagnosis and writes the captured wire traffic as
// concatenated Driver-Kernel frames, ready for the analysis tooling:
//
//   $ ./fault_capture_demo out.capture
//   $ cosim_lint --frames out.capture
//
// The committed examples/captures/gdb_kernel_fault.capture was produced by
// exactly this program (CI re-lints it on every push).
#include <chrono>
#include <cstdio>

#include "cosim/gdb_kernel.hpp"
#include "cosim/session.hpp"
#include "sysc/sysc.hpp"

using namespace nisc;
using namespace nisc::sysc::time_literals;

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "gdb_kernel_fault.capture";

  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);

  cosim::GdbTargetConfig config;
  config.fault_plan.seed = 0x1CEB00DAULL;
  config.fault_plan.disconnect_send(/*nth=*/1, /*keep_bytes=*/2);
  config.reply_timeout_ms = 500;
  config.io_timeout_ms = 1000;
  config.throttled = false;
  cosim::GdbTarget target("_start:\n  ebreak\n", config);

  cosim::GdbKernelOptions options;
  options.instructions_per_us = 1000000;
  cosim::GdbKernelExtension ext(target.client(), nullptr, {}, options);
  ctx.register_extension(&ext);
  target.start();

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!ext.error() && !ext.target_finished() &&
         std::chrono::steady_clock::now() < deadline) {
    ctx.run(1_us);
  }
  target.shutdown();
  ctx.unregister_extension(&ext);

  if (!ext.error()) {
    std::fprintf(stderr, "expected a structured transport error, got none\n");
    return 1;
  }
  const cosim::CosimError& error = *ext.error();
  std::printf("== structured co-simulation error ==\n%s\n", error.to_string().c_str());

  if (error.capture_frames.empty()) {
    std::fprintf(stderr, "no wire capture attached\n");
    return 1;
  }
  FILE* out = std::fopen(out_path, "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(error.capture_frames.data(), 1, error.capture_frames.size(), out);
  std::fclose(out);
  std::printf("wrote %zu bytes of wire capture to %s (try: cosim_lint --frames %s)\n",
              error.capture_frames.size(), out_path, out_path);
  return 0;
}
