// The paper's case study under Driver-Kernel co-simulation (§4 + §5).
//
// The checksum application now runs on an eCos-like RTOS on the ISS and
// talks to the SystemC router through a device driver: dev_read/dev_write
// syscalls exchange whole packets with the kernel over the data socket
// (paper: port 4444); device interrupts would arrive over the interrupt
// socket (port 4445) — see the interrupt_latency example for that path.
//
//   $ ./router_driver_kernel [--trace-out=FILE] [--stats-out=FILE]
#include <cstdio>

#include "obs_cli.hpp"
#include "router/testbench.hpp"

using namespace nisc;
using namespace nisc::sysc::time_literals;

int main(int argc, char** argv) {
  examples::ObsCli obs_cli = examples::ObsCli::parse(argc, argv);
  router::TestbenchConfig config;
  config.scheme = router::Scheme::DriverKernel;
  config.packets_per_producer = 25;
  config.num_producers = 4;
  config.inter_packet_delay = 2_us;
  config.instructions_per_us = 400000;

  std::printf("== %s co-simulation of the 4x4 router ==\n",
              router::scheme_name(config.scheme));
  std::printf("guest program (RTOS flavor, excerpt):\n%.420s...\n\n",
              router::bulk_checksum_source().c_str());

  router::Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(100, sysc::SC_MS));
  router::TestbenchReport r = bench.report();

  std::printf("simulated time    : %s\n", r.sim_time.to_string().c_str());
  std::printf("wall clock        : %.3f s\n", r.wall_seconds);
  std::printf("packets produced  : %llu\n", static_cast<unsigned long long>(r.produced));
  std::printf("packets received  : %llu (%.1f%% forwarded)\n",
              static_cast<unsigned long long>(r.received), r.forwarded_pct);
  std::printf("checksum verified : %llu ok, %llu bad\n",
              static_cast<unsigned long long>(r.checksum_ok),
              static_cast<unsigned long long>(r.checksum_bad));
  std::printf("driver messages   : %llu\n",
              static_cast<unsigned long long>(r.driver_messages));
  bench.shutdown();
  obs_cli.finish();
  return (r.received == r.produced && r.checksum_bad == 0) ? 0 : 1;
}
