// Multi-processor co-simulation — the "Multi-Processor SoC" of the paper's
// title (§3: "an architectural template consisting of several processors
// interacting with hardware blocks").
//
// The router drives TWO checksum CPUs, each a full ISS + GDB stub session
// integrated through its own kernel-level binding set; the router's two
// forwarding processes load-balance packets across whichever CPU is free.
//
//   $ ./mpsoc_router [--trace-out=FILE] [--stats-out=FILE]
#include <cstdio>

#include "obs_cli.hpp"
#include "router/testbench.hpp"

using namespace nisc;
using namespace nisc::sysc::time_literals;

int main(int argc, char** argv) {
  examples::ObsCli obs_cli = examples::ObsCli::parse(argc, argv);
  router::TestbenchConfig config;
  config.scheme = router::Scheme::GdbKernel;
  config.num_cpus = 2;
  config.packets_per_producer = 25;
  config.num_producers = 4;
  config.inter_packet_delay = 1_us;
  config.instructions_per_us = 400000;

  std::printf("== MPSoC: %d CPUs under %s co-simulation ==\n", config.num_cpus,
              router::scheme_name(config.scheme));

  router::Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(100, sysc::SC_MS));
  router::TestbenchReport r = bench.report();
  const router::RouterStats& rs = bench.router().stats();

  std::printf("simulated time    : %s\n", r.sim_time.to_string().c_str());
  std::printf("packets produced  : %llu, received %llu (%.1f%%), checksum ok %llu\n",
              static_cast<unsigned long long>(r.produced),
              static_cast<unsigned long long>(r.received), r.forwarded_pct,
              static_cast<unsigned long long>(r.checksum_ok));
  for (std::size_t e = 0; e < rs.per_engine.size(); ++e) {
    std::printf("CPU %zu checksummed : %llu packets\n", e,
                static_cast<unsigned long long>(rs.per_engine[e]));
  }
  bool balanced = rs.per_engine[0] > 0 && rs.per_engine[1] > 0;
  std::printf("load balanced     : %s\n", balanced ? "yes" : "NO");
  bench.shutdown();
  obs_cli.finish();
  return (r.received == r.produced && r.checksum_bad == 0 && balanced) ? 0 : 1;
}
